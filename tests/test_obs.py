"""Tests for :mod:`repro.obs` — metrics registry, spans, exporter.

Covers the telemetry subsystem in isolation: histogram bucket math and
percentile edge cases, span nesting/labels/annotations, counter
thread-safety under a real worker pool, and the JSON-line exporter
round-trip.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    default_registry,
    record_span,
    span,
)
from repro.obs.metrics import _label_key, label_string


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test sees a quiet global recorder and leaves one behind."""
    obs.disable()
    obs.clear_spans()
    yield
    obs.disable()
    obs.clear_spans()


# ---------------------------------------------------------------------------
# MetricsRegistry: counters and gauges
# ---------------------------------------------------------------------------


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("cache.hit", stage="ft")
        reg.inc("cache.hit", stage="ft")
        reg.inc("cache.hit", stage="iig")
        reg.inc("cache.hit", 3, stage="iig")
        assert reg.counter("cache.hit", stage="ft") == 2
        assert reg.counter("cache.hit", stage="iig") == 4
        assert reg.counter("cache.hit", stage="zones") == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a="1", b="2")
        reg.inc("x", b="2", a="1")
        assert reg.counter("x", b="2", a="1") == 2

    def test_gauge_is_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 1)
        assert reg.gauge("depth") == 1

    def test_clear_resets_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 0.5)
        reg.clear()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counter_thread_safety(self):
        """Hammer one counter from many threads; no increments lost."""
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                reg.inc("hot", stage="ft")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hot", stage="ft") == threads_n * per_thread


# ---------------------------------------------------------------------------
# Histograms: bucket math and percentile edges
# ---------------------------------------------------------------------------


class TestHistograms:
    def test_default_buckets_are_sorted_and_span_us_to_100s(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert list(bounds) == sorted(bounds)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(100.0)

    def test_observations_land_in_correct_buckets(self):
        reg = MetricsRegistry()
        # Bucket bounds are upper-inclusive (Prometheus "le" semantics).
        reg.observe("lat", 0.5e-6)  # below the first bound
        reg.observe("lat", 1e-6)  # exactly on a bound
        reg.observe("lat", 0.003)  # mid-range
        reg.observe("lat", 1000.0)  # beyond the last finite bound
        hist = reg.histogram("lat")
        assert hist.count == 4
        assert hist.sum == pytest.approx(1000.0030015, rel=1e-6)
        bounds = hist.bounds
        counts = hist.counts
        # One count slot per finite bound plus the overflow bucket.
        assert len(counts) == len(bounds) + 1
        # First two samples share the 1e-6 bucket (<= bound).
        assert counts[bounds.index(1e-6)] == 2
        # The overflow sample sits in the trailing +inf bucket.
        assert counts[-1] == 1

    def test_unobserved_series_reads_as_none(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1)
        assert reg.histogram("lat", stage="nope") is None

    def test_percentiles_on_empty_histogram_are_zero(self):
        empty = HistogramSnapshot(
            bounds=(1.0, 2.0), counts=(0, 0, 0), count=0, sum=0.0
        )
        assert empty.percentile(0.5) == 0.0
        assert empty.percentile(0.99) == 0.0

    def test_single_sample_percentiles(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.003)
        hist = reg.histogram("lat")
        # Every percentile of one sample resolves inside its bucket.
        for q in (0.5, 0.9, 0.99):
            assert 0.002 < hist.percentile(q) <= 0.005

    def test_percentile_interpolates_within_bucket(self):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.observe("lat", 0.004)  # all in the (0.002, 0.005] bucket
        p50 = reg.histogram("lat").percentile(0.5)
        assert 0.002 <= p50 <= 0.005

    def test_overflow_percentile_clamps_to_largest_finite_bound(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("lat", 1e9)  # everything overflows
        hist = reg.histogram("lat")
        assert hist.percentile(0.99) == pytest.approx(
            DEFAULT_LATENCY_BUCKETS[-1]
        )

    def test_custom_buckets_fixed_by_first_observe(self):
        reg = MetricsRegistry()
        reg.observe("rows", 3, buckets=(1, 10, 100))
        reg.observe("rows", 50)
        hist = reg.histogram("rows")
        assert hist.bounds == (1, 10, 100)
        assert hist.count == 2

    def test_snapshot_histogram_shape(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.01, stage="ft")
        snap = reg.snapshot()
        series = snap["histograms"]["lat"]["stage=ft"]
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(0.01)
        assert {"p50", "p90", "p99"} <= set(series)

    def test_label_string_sorts_keys(self):
        assert label_string(_label_key({"b": "2", "a": "1"})) == "a=1,b=2"
        assert label_string(_label_key({})) == ""


# ---------------------------------------------------------------------------
# Spans: timing, nesting, labels, ring buffer
# ---------------------------------------------------------------------------


class TestSpans:
    def test_span_always_observes_its_metric(self):
        """Timing lands in the registry even with recording disabled."""
        reg = default_registry()
        existing = reg.histogram("test.seconds", stage="x")
        before = existing.count if existing is not None else 0
        with span("test.unit", metric="test.seconds", stage="x"):
            pass
        assert reg.histogram("test.seconds", stage="x").count == before + 1

    def test_disabled_spans_do_not_record(self):
        with span("quiet.span"):
            pass
        assert obs.recent_spans() == []

    def test_enabled_spans_record_with_labels(self):
        obs.enable()
        with span("loud.span", stage="ft", engine="array") as sp:
            sp.annotate(rows=123)
        (record,) = obs.recent_spans()
        assert record["name"] == "loud.span"
        assert record["labels"] == {"stage": "ft", "engine": "array"}
        assert record["annotations"] == {"rows": "123"}
        assert record["seconds"] >= 0.0
        assert record["depth"] == 0

    def test_annotations_do_not_leak_into_metric_labels(self):
        """Free-form annotations must never mint histogram series."""
        obs.enable()
        reg = default_registry()
        with span("ann.span", metric="ann.seconds", stage="ft") as sp:
            sp.annotate(rows=987654)
        series = reg.snapshot()["histograms"]["ann.seconds"]
        assert set(series) == {"stage=ft"}

    def test_nesting_tracks_depth_and_parent(self):
        obs.enable()
        with span("outer"):
            with span("inner"):
                with span("leaf"):
                    pass
        records = {r["name"]: r for r in obs.recent_spans()}
        assert records["outer"]["depth"] == 0
        assert records["inner"]["depth"] == 1
        assert records["inner"]["parent"] == "outer"
        assert records["leaf"]["depth"] == 2
        assert records["leaf"]["parent"] == "inner"

    def test_span_exits_cleanly_on_exception(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        # The stack is balanced: a sibling span is depth 0 again.
        with span("sibling"):
            pass
        records = {r["name"]: r for r in obs.recent_spans()}
        assert records["doomed"]["depth"] == 0
        assert records["sibling"]["depth"] == 0
        assert "parent" not in records["sibling"]

    def test_ring_buffer_keeps_newest(self):
        obs.enable()
        for i in range(obs.DEFAULT_RING_SPANS + 10):
            with span(f"s{i}"):
                pass
        records = obs.recent_spans(limit=obs.DEFAULT_RING_SPANS + 10)
        assert len(records) == obs.DEFAULT_RING_SPANS
        assert records[-1]["name"] == f"s{obs.DEFAULT_RING_SPANS + 9}"

    def test_recent_spans_limit(self):
        obs.enable()
        for i in range(5):
            with span(f"s{i}"):
                pass
        tail = obs.recent_spans(limit=2)
        assert [r["name"] for r in tail] == ["s3", "s4"]

    def test_record_span_posthoc(self):
        """record_span backfills timings that straddle generator yields."""
        obs.enable()
        reg = default_registry()
        record_span(
            "posthoc", 0.25, metric="posthoc.seconds", stage="ingest"
        )
        (record,) = obs.recent_spans()
        assert record["name"] == "posthoc"
        assert record["seconds"] == pytest.approx(0.25)
        assert reg.histogram("posthoc.seconds", stage="ingest").count == 1

    def test_span_under_worker_pool_threads(self):
        """Spans from concurrent threads never corrupt each other."""
        obs.enable()
        errors: list[Exception] = []

        def work(tag: str):
            try:
                for _ in range(200):
                    with span(f"outer.{tag}"):
                        with span(f"inner.{tag}") as sp:
                            assert sp.depth == 1
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [
            threading.Thread(target=work, args=(str(i),)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Nesting is per-thread: every inner span has depth exactly 1.
        inners = [
            r
            for r in obs.recent_spans(limit=obs.DEFAULT_RING_SPANS)
            if r["name"].startswith("inner.")
        ]
        assert inners and all(r["depth"] == 1 for r in inners)


# ---------------------------------------------------------------------------
# Exporter: JSON-line round-trip
# ---------------------------------------------------------------------------


class TestExporter:
    def test_export_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs.enable(export=path)
        with span("exported", stage="ft") as sp:
            sp.annotate(rows=7)
        with span("exported.second"):
            pass
        obs.disable()  # flushes and closes the export handle
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "exported"
        assert first["labels"] == {"stage": "ft"}
        assert first["annotations"] == {"rows": "7"}
        assert first["seconds"] >= 0.0

    def test_unwritable_export_path_degrades_gracefully(self, tmp_path):
        bad = tmp_path / "no-such-dir" / "spans.jsonl"
        obs.enable(export=bad)
        with span("lost"):
            pass  # must not raise; exporter silently drops itself
        assert [r["name"] for r in obs.recent_spans()] == ["lost"]

    def test_env_var_enables_recording(self, monkeypatch, tmp_path):
        import importlib

        import repro.obs.tracing as tracing

        monkeypatch.setenv(obs.ENABLE_ENV, "1")
        monkeypatch.setenv(obs.EXPORT_ENV, str(tmp_path / "env.jsonl"))
        importlib.reload(tracing)
        try:
            assert tracing.enabled()
            with tracing.span("from-env"):
                pass
            tracing.disable()
            exported = (tmp_path / "env.jsonl").read_text()
            assert "from-env" in exported
        finally:
            monkeypatch.delenv(obs.ENABLE_ENV)
            monkeypatch.delenv(obs.EXPORT_ENV)
            importlib.reload(tracing)
            importlib.reload(obs)
