"""Property-based round-trip tests for the netlist formats."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    GateKind,
    cnot,
    fredkin,
    h,
    mcf,
    mct,
    s,
    swap,
    t,
    tdg,
    toffoli,
    x,
)
from repro.circuits.parser import (
    reads_qasm_lite,
    reads_real,
    writes_qasm_lite,
    writes_real,
)


def _random_synthesis_circuit(num_qubits: int, gate_count: int, seed: int) -> Circuit:
    """Random circuit over the .real-expressible gate kinds."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    for _ in range(gate_count):
        roll = rng.random()
        if roll < 0.2:
            circuit.append(x(rng.randrange(num_qubits)))
        elif roll < 0.45:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(cnot(a, b))
        elif roll < 0.65:
            a, b, c = rng.sample(range(num_qubits), 3)
            circuit.append(toffoli(a, b, c))
        elif roll < 0.8:
            a, b, c = rng.sample(range(num_qubits), 3)
            circuit.append(fredkin(a, b, c))
        elif roll < 0.92 and num_qubits >= 4:
            size = rng.randint(4, min(num_qubits, 6))
            operands = rng.sample(range(num_qubits), size)
            circuit.append(mct(tuple(operands[:-1]), operands[-1]))
        else:
            size = max(4, min(num_qubits, 4))
            operands = rng.sample(range(num_qubits), size)
            circuit.append(mcf(tuple(operands[:-2]), operands[-2], operands[-1]))
    return circuit


def _random_ft_circuit(num_qubits: int, gate_count: int, seed: int) -> Circuit:
    """Random circuit over FT kinds plus SWAP (qasm-lite expressible)."""
    rng = random.Random(seed)
    one_qubit = [h, t, tdg, s, x]
    circuit = Circuit(num_qubits)
    for _ in range(gate_count):
        roll = rng.random()
        if roll < 0.5:
            circuit.append(rng.choice(one_qubit)(rng.randrange(num_qubits)))
        elif roll < 0.9:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(cnot(a, b))
        else:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(swap(a, b))
    return circuit


@given(
    num_qubits=st.integers(4, 10),
    gate_count=st.integers(0, 40),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_real_roundtrip_preserves_gates(num_qubits, gate_count, seed):
    original = _random_synthesis_circuit(num_qubits, gate_count, seed)
    recovered = reads_real(writes_real(original))
    assert recovered.num_qubits == original.num_qubits
    assert len(recovered) == len(original)
    for g1, g2 in zip(original, recovered):
        # .real canonicalizes X/CNOT/TOFFOLI into the MCT family and
        # FREDKIN into MCF; the constructors re-normalize, so kinds and
        # operand roles must round-trip exactly.
        assert g1.kind is g2.kind
        assert g1.controls == g2.controls
        assert g1.targets == g2.targets


@given(
    num_qubits=st.integers(2, 8),
    gate_count=st.integers(0, 40),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_qasm_lite_roundtrip_preserves_gates(num_qubits, gate_count, seed):
    original = _random_ft_circuit(num_qubits, gate_count, seed)
    recovered = reads_qasm_lite(writes_qasm_lite(original))
    assert recovered.num_qubits == original.num_qubits
    assert list(recovered) == list(original)


@given(
    num_qubits=st.integers(4, 8),
    gate_count=st.integers(1, 25),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_real_roundtrip_preserves_function(num_qubits, gate_count, seed):
    from repro.circuits.simulate import simulate_basis

    original = _random_synthesis_circuit(num_qubits, gate_count, seed)
    recovered = reads_real(writes_real(original))
    rng = random.Random(seed)
    bits = [rng.randrange(2) for _ in range(num_qubits)]
    assert simulate_basis(recovered, bits) == simulate_basis(original, bits)
