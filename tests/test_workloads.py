"""Unit tests for the workload registry (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.circuits.gates import GateKind
from repro.engine import BatchRunner, CircuitSpec
from repro.engine.runner import sweep_workload
from repro.exceptions import EngineError
from repro.workloads import (
    WORKLOADS,
    build_member,
    enumerate_members,
    get_workload,
    member_label,
    workload_names,
)


class TestRegistry:
    def test_families_registered(self):
        assert set(workload_names()) == {
            "library",
            "gf2",
            "qecc",
            "random_nct",
            "random_ft",
        }

    def test_unknown_family_rejected(self):
        with pytest.raises(EngineError, match="unknown workload"):
            get_workload("nope")

    def test_every_family_enumerates_under_defaults(self):
        for name, family in WORKLOADS.items():
            members = enumerate_members(name)
            assert members, name
            assert len(set(members)) == len(members), name

    def test_unknown_parameter_rejected(self):
        with pytest.raises(EngineError, match="unknown parameter"):
            enumerate_members("gf2", bogus=3)

    def test_non_integer_override_rejected(self):
        with pytest.raises(EngineError, match="integers"):
            enumerate_members("gf2", n_max="big")


class TestEnumeration:
    def test_gf2_range(self):
        members = enumerate_members("gf2", n_min=4, n_max=8, step=2)
        assert members == (
            "workload:gf2/n=4",
            "workload:gf2/n=6",
            "workload:gf2/n=8",
        )

    def test_gf2_invalid_range_rejected(self):
        with pytest.raises(EngineError, match="n_min <= n_max"):
            enumerate_members("gf2", n_min=9, n_max=4)

    def test_library_members_are_registered_names(self):
        from repro.circuits.library import BENCHMARKS

        for member in enumerate_members("library"):
            assert member in BENCHMARKS

    def test_library_paper_ops_filter(self):
        small = enumerate_members("library", max_paper_ops=1000)
        everything = enumerate_members("library", max_paper_ops=0)
        assert set(small) < set(everything)

    def test_random_family_distinct_seeds(self):
        members = enumerate_members("random_ft", count=3, seed0=7)
        assert len(members) == 3
        assert "seed=7" in members[0] and "seed=9" in members[2]


class TestMembers:
    def test_build_member_gf2(self):
        circuit = build_member("workload:gf2/n=6")
        assert circuit.name == "gf2^6mult"
        assert circuit.num_qubits == 18

    def test_build_member_random_ft_is_ft_and_deterministic(self):
        source = "workload:random_ft/qubits=6,gates=50,cnot_pct=40,seed=3"
        one, two = build_member(source), build_member(source)
        assert one.is_ft()
        assert list(one.gates) == list(two.gates)

    def test_build_member_rejects_bad_strings(self):
        with pytest.raises(EngineError, match="prefix"):
            build_member("gf2/n=6")
        with pytest.raises(EngineError, match="unknown workload"):
            build_member("workload:nope/n=6")
        with pytest.raises(EngineError, match="not an integer"):
            build_member("workload:gf2/n=six")
        with pytest.raises(EngineError, match="key=value"):
            build_member("workload:gf2/n")
        with pytest.raises(EngineError, match="missing parameter"):
            build_member("workload:gf2/")

    def test_library_members_have_no_generated_builder(self):
        with pytest.raises(EngineError, match="registered benchmark ids"):
            build_member("workload:library/x=1")

    def test_member_label(self):
        assert member_label("workload:gf2/n=8") == "gf2(n=8)"
        assert member_label("ham3") == "ham3"

    def test_spec_round_trip(self):
        spec = CircuitSpec("workload:qecc/r=3", ft=False)
        circuit = spec.load()
        assert circuit.count_kind(GateKind.MCT) > 0


class TestSweep:
    def test_sweep_workload_tags_and_order(self):
        results = sweep_workload("gf2", overrides={"n_min": 4, "n_max": 6, "step": 2})
        assert [p.job.tag for p in results] == ["gf2(n=4)", "gf2(n=6)"]
        assert all(p.ok for p in results)

    def test_sweep_workload_multi_point_tags_distinct(self):
        from repro.fabric.params import DEFAULT_PARAMS

        grid = [DEFAULT_PARAMS.with_fabric(s, s) for s in (40, 60)]
        results = sweep_workload(
            "gf2",
            overrides={"n_min": 4, "n_max": 4, "step": 1},
            params_grid=grid,
        )
        tags = [p.job.tag for p in results]
        assert tags == ["gf2(n=4) @0:40x40", "gf2(n=4) @1:60x60"]
        assert len(set(tags)) == len(tags)

    def test_sweep_workload_empty_grid_rejected(self):
        with pytest.raises(EngineError, match="at least one point"):
            sweep_workload("gf2", params_grid=[])

    def test_sweep_workload_custom_runner_shares_cache(self):
        runner = BatchRunner(workers=1)
        sweep_workload(
            "random_ft",
            overrides={"count": 2, "qubits": 5, "gates": 30},
            runner=runner,
        )
        # random_ft members are already FT: the ft stage passes them
        # through, but still records one build per member.
        assert runner.cache.stats().miss_count("ft") == 2
