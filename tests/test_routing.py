"""Unit tests for the QSPR router (repro.qspr.routing)."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.fabric.params import FabricSpec, PhysicalParams
from repro.fabric.tqa import TQA
from repro.qspr.routing import ROUTING_MODES, Router


@pytest.fixture
def params():
    return PhysicalParams(fabric=FabricSpec(8, 8), channel_capacity=1)


@pytest.fixture
def tqa(params):
    return TQA(params.fabric)


class TestBasics:
    def test_zero_length_move(self, tqa, params):
        router = Router(tqa, params)
        move = router.move((2, 2), (2, 2), 50.0)
        assert move.arrival == 50.0
        assert move.hops == 0
        assert router.total_moves == 0

    @pytest.mark.parametrize("mode", ROUTING_MODES)
    def test_uncongested_move_takes_manhattan_hops(self, tqa, params, mode):
        router = Router(tqa, params, mode=mode)
        move = router.move((0, 0), (3, 2), 0.0)
        assert move.hops == 5
        assert move.arrival == pytest.approx(5 * params.t_move)
        assert move.wait == 0.0

    def test_unknown_mode_rejected(self, tqa, params):
        with pytest.raises(MappingError, match="unknown routing mode"):
            Router(tqa, params, mode="teleport")

    def test_statistics_accumulate(self, tqa, params):
        router = Router(tqa, params)
        router.move((0, 0), (2, 0), 0.0)
        router.move((0, 0), (0, 3), 0.0)
        assert router.total_moves == 2
        assert router.total_hops == 5


class TestMeetingPoint:
    def test_midpoint_for_distant_qubits(self, tqa, params):
        router = Router(tqa, params)
        meeting = router.meeting_point((0, 0), (4, 0))
        assert meeting == (2, 0)

    def test_same_location_meets_in_place(self, tqa, params):
        router = Router(tqa, params)
        assert router.meeting_point((3, 3), (3, 3)) == (3, 3)

    def test_meeting_point_roughly_balances_distances(self, tqa, params):
        router = Router(tqa, params)
        a, b = (0, 0), (5, 3)
        meeting = router.meeting_point(a, b)
        da, db = TQA.manhattan(a, meeting), TQA.manhattan(b, meeting)
        assert abs(da - db) <= 1


class TestCongestion:
    def test_xy_repeated_moves_queue_on_capacity_one(self, tqa, params):
        router = Router(tqa, params, mode="xy")
        first = router.move((0, 0), (1, 0), 0.0)
        second = router.move((0, 0), (1, 0), 0.0)
        assert first.arrival == pytest.approx(100.0)
        assert second.arrival == pytest.approx(200.0)
        assert second.wait == pytest.approx(100.0)

    def test_maze_detours_around_congestion(self, tqa, params):
        router = Router(tqa, params, mode="maze")
        # Saturate the straight channel (0,0)-(1,0).
        router.move((0, 0), (1, 0), 0.0)
        # A second qubit heading to (1,0) can detour via (0,1): 3 hops with
        # no wait (300) beats 1 hop with a 100 wait... both are 200 vs 300;
        # the router must pick whichever arrives first.
        move = router.move((0, 0), (1, 0), 0.0)
        assert move.arrival <= 300.0

    def test_maze_never_slower_than_xy_on_shared_state(self, params):
        # Run the same traffic pattern through both modes and compare
        # total arrival times: maze routing must not lose.
        pattern = [((0, 0), (3, 0)), ((0, 0), (3, 0)), ((0, 1), (3, 1))]
        totals = {}
        for mode in ROUTING_MODES:
            router = Router(TQA(params.fabric), params, mode=mode)
            totals[mode] = sum(
                router.move(src, dst, 0.0).arrival for src, dst in pattern
            )
        assert totals["maze"] <= totals["xy"] + 1e-9

    def test_congestion_wait_tracked(self, tqa, params):
        router = Router(tqa, params, mode="xy")
        router.move((0, 0), (1, 0), 0.0)
        router.move((0, 0), (1, 0), 0.0)
        assert router.total_congestion_wait == pytest.approx(100.0)
