"""Unit tests for GF(2) polynomial arithmetic (repro.circuits.gf2)."""

from __future__ import annotations

import pytest

from repro.circuits.gf2 import (
    find_irreducible,
    is_irreducible,
    poly_degree,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    poly_pow_x,
    reduction_table,
)
from repro.exceptions import CircuitError


class TestPolyBasics:
    def test_degree(self):
        assert poly_degree(0) == -1
        assert poly_degree(1) == 0
        assert poly_degree(0b1011) == 3

    def test_mul_is_carry_free(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2).
        assert poly_mul(0b11, 0b11) == 0b101

    def test_mul_by_zero(self):
        assert poly_mul(0b1101, 0) == 0

    def test_mod_reduces_degree(self):
        # x^3 mod (x^2 + x + 1): x^3 = x*x^2 = x(x+1) = x^2+x = 1.
        assert poly_mod(0b1000, 0b111) == 0b1

    def test_mod_zero_modulus_rejected(self):
        with pytest.raises(CircuitError):
            poly_mod(0b101, 0)

    def test_mulmod_matches_mul_then_mod(self):
        modulus = 0b10011  # x^4 + x + 1
        for a in range(1, 16):
            for b in range(1, 16):
                assert poly_mulmod(a, b, modulus) == poly_mod(
                    poly_mul(a, b), modulus
                )

    def test_gcd(self):
        # gcd(x^2 + x, x) = x.
        assert poly_gcd(0b110, 0b10) == 0b10

    def test_pow_x_small(self):
        modulus = 0b111  # x^2 + x + 1, field GF(4): x^4 = x.
        assert poly_pow_x(2, modulus) == 0b10


class TestIrreducibility:
    @pytest.mark.parametrize("poly", [
        0b111,       # x^2 + x + 1
        0b1011,      # x^3 + x + 1
        0b10011,     # x^4 + x + 1
        0b100101,    # x^5 + x^2 + 1
    ])
    def test_known_irreducible(self, poly):
        assert is_irreducible(poly)

    @pytest.mark.parametrize("poly", [
        0b101,     # x^2 + 1 = (x+1)^2
        0b110,     # x^2 + x = x(x+1)
        0b1111,    # x^3+x^2+x+1 = (x+1)(x^2+1)
    ])
    def test_known_reducible(self, poly):
        assert not is_irreducible(poly)

    def test_degree_one_is_irreducible(self):
        assert is_irreducible(0b10)
        assert is_irreducible(0b11)

    def test_constants_are_not(self):
        assert not is_irreducible(1)
        assert not is_irreducible(0)


class TestFindIrreducible:
    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 8, 15, 16, 20])
    def test_found_polynomial_is_irreducible_of_right_degree(self, degree):
        poly = find_irreducible(degree)
        assert poly_degree(poly) == degree
        assert is_irreducible(poly)

    def test_degree_15_is_the_classic_trinomial(self):
        # x^15 + x + 1 is the lowest-k irreducible trinomial of degree 15.
        assert find_irreducible(15) == (1 << 15) | 0b11

    def test_large_degrees_terminate(self):
        for degree in (64, 128, 256):
            poly = find_irreducible(degree)
            assert poly_degree(poly) == degree

    def test_invalid_degree_rejected(self):
        with pytest.raises(CircuitError):
            find_irreducible(0)


class TestReductionTable:
    def test_low_powers_are_monomials(self):
        table = reduction_table(4)
        for d in range(4):
            assert table[d] == 1 << d

    def test_table_length(self):
        assert len(reduction_table(6)) == 11  # 2n - 1

    def test_entries_reduce_correctly(self):
        modulus = find_irreducible(5)
        table = reduction_table(5, modulus)
        for d, entry in enumerate(table):
            assert entry == poly_mod(1 << d, modulus)
            assert poly_degree(entry) < 5

    def test_modulus_degree_mismatch_rejected(self):
        with pytest.raises(CircuitError, match="degree"):
            reduction_table(4, modulus=0b111)
