"""Unit tests for the fabric layer (params, TQA geometry, channels)."""

from __future__ import annotations

import pytest

from repro.circuits.gates import GateKind
from repro.exceptions import FabricError
from repro.fabric.channels import ChannelNetwork
from repro.fabric.params import DEFAULT_PARAMS, FabricSpec, GateDelays, PhysicalParams
from repro.fabric.tqa import TQA


class TestGateDelays:
    def test_table1_defaults(self):
        delays = GateDelays()
        assert delays.h == 5440.0
        assert delays.t == delays.tdg == 10940.0
        assert delays.x == delays.y == delays.z == 5240.0
        assert delays.cnot == 4930.0

    def test_by_kind_covers_all_ft_kinds(self):
        table = GateDelays().by_kind()
        from repro.circuits.gates import FT_KINDS

        assert set(table) == set(FT_KINDS)

    def test_delay_of_non_ft_kind_rejected(self):
        with pytest.raises(FabricError, match="not an FT operation"):
            GateDelays().delay_of(GateKind.TOFFOLI)

    def test_from_mapping_overrides_and_defaults(self):
        delays = GateDelays.from_mapping({GateKind.H: 100.0})
        assert delays.h == 100.0
        assert delays.cnot == 4930.0

    def test_from_mapping_rejects_non_ft(self):
        with pytest.raises(FabricError):
            GateDelays.from_mapping({GateKind.TOFFOLI: 1.0})

    def test_scaled(self):
        scaled = GateDelays().scaled(2.0)
        assert scaled.h == 10880.0
        assert scaled.cnot == 9860.0

    def test_non_positive_delay_rejected(self):
        with pytest.raises(FabricError):
            GateDelays(h=0.0)


class TestPhysicalParams:
    def test_table1_defaults(self):
        assert DEFAULT_PARAMS.channel_capacity == 5
        assert DEFAULT_PARAMS.qubit_speed == 0.001
        assert DEFAULT_PARAMS.t_move == 100.0
        assert DEFAULT_PARAMS.fabric.area == 3600
        assert DEFAULT_PARAMS.fabric.width == 60

    def test_one_qubit_routing_latency_is_2_tmove(self):
        assert DEFAULT_PARAMS.one_qubit_routing_latency == 200.0

    def test_with_fabric(self):
        params = DEFAULT_PARAMS.with_fabric(10, 20)
        assert params.fabric.area == 200
        assert params.delays == DEFAULT_PARAMS.delays

    @pytest.mark.parametrize("kwargs", [
        {"channel_capacity": 0},
        {"qubit_speed": 0.0},
        {"t_move": -1.0},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(FabricError):
            PhysicalParams(**kwargs)

    def test_fabric_spec_validation(self):
        with pytest.raises(FabricError):
            FabricSpec(0, 5)


class TestTQA:
    @pytest.fixture
    def tqa(self):
        return TQA(FabricSpec(5, 4))

    def test_area_and_contains(self, tqa):
        assert tqa.area == 20
        assert tqa.contains((4, 3))
        assert not tqa.contains((5, 0))
        assert not tqa.contains((0, -1))

    def test_check_raises_off_grid(self, tqa):
        with pytest.raises(FabricError, match="outside"):
            tqa.check((9, 9))

    def test_index_position_roundtrip(self, tqa):
        for position in tqa.positions():
            assert tqa.position(tqa.index(position)) == position

    def test_positions_covers_area_once(self, tqa):
        seen = list(tqa.positions())
        assert len(seen) == 20
        assert len(set(seen)) == 20

    def test_neighbors_interior_and_corner(self, tqa):
        assert len(tqa.neighbors((2, 2))) == 4
        assert len(tqa.neighbors((0, 0))) == 2

    def test_manhattan(self):
        assert TQA.manhattan((0, 0), (3, 4)) == 7

    def test_channel_canonical_order(self):
        assert TQA.channel((1, 0), (0, 0)) == ((0, 0), (1, 0))

    def test_channel_requires_adjacency(self):
        with pytest.raises(FabricError, match="not adjacent"):
            TQA.channel((0, 0), (2, 0))

    def test_route_xy_endpoints_and_length(self, tqa):
        path = tqa.route_xy((0, 0), (3, 2))
        assert path[0] == (0, 0)
        assert path[-1] == (3, 2)
        assert len(path) == TQA.manhattan((0, 0), (3, 2)) + 1

    def test_route_xy_steps_are_adjacent(self, tqa):
        path = tqa.route_xy((4, 3), (0, 0))
        for a, b in zip(path, path[1:]):
            assert TQA.manhattan(a, b) == 1

    def test_route_xy_goes_x_first(self, tqa):
        path = tqa.route_xy((0, 0), (2, 2))
        assert path[1] == (1, 0)  # x moves before y

    def test_route_to_self(self, tqa):
        assert tqa.route_xy((1, 1), (1, 1)) == [(1, 1)]

    def test_route_channels_count(self, tqa):
        channels = tqa.route_channels((0, 0), (2, 1))
        assert len(channels) == 3

    def test_midpoint_is_on_route(self, tqa):
        mid = tqa.midpoint((0, 0), (4, 2))
        assert mid in tqa.route_xy((0, 0), (4, 2))

    def test_out_of_range_index_rejected(self, tqa):
        with pytest.raises(FabricError):
            tqa.position(20)


class TestChannelNetwork:
    def test_uncongested_traversal_takes_t_move(self):
        net = ChannelNetwork(capacity=2, t_move=100.0)
        channel = ((0, 0), (1, 0))
        assert net.traverse(channel, 0.0) == 100.0

    def test_capacity_concurrent_traversals_unpenalized(self):
        net = ChannelNetwork(capacity=3, t_move=100.0)
        channel = ((0, 0), (1, 0))
        for _ in range(3):
            assert net.traverse(channel, 0.0) == 100.0
        assert net.total_wait == 0.0

    def test_overflow_traversal_queues(self):
        net = ChannelNetwork(capacity=2, t_move=100.0)
        channel = ((0, 0), (1, 0))
        net.traverse(channel, 0.0)
        net.traverse(channel, 0.0)
        # Third qubit must wait for a slot freeing at t=100.
        assert net.traverse(channel, 0.0) == 200.0
        assert net.total_wait == 100.0

    def test_slots_free_over_time(self):
        net = ChannelNetwork(capacity=1, t_move=50.0)
        channel = ((0, 0), (1, 0))
        assert net.traverse(channel, 0.0) == 50.0
        # Arriving after the slot freed: no wait.
        assert net.traverse(channel, 60.0) == 110.0
        assert net.total_wait == 0.0

    def test_peek_start_matches_traverse_without_reserving(self):
        net = ChannelNetwork(capacity=1, t_move=100.0)
        channel = ((0, 0), (1, 0))
        net.traverse(channel, 0.0)
        assert net.peek_start(channel, 10.0) == 100.0
        # Peeking twice gives the same answer (no reservation happened).
        assert net.peek_start(channel, 10.0) == 100.0

    def test_peek_on_fresh_channel(self):
        net = ChannelNetwork(capacity=1, t_move=100.0)
        assert net.peek_start(((0, 0), (1, 0)), 42.0) == 42.0

    def test_traverse_path_sequences_hops(self):
        net = ChannelNetwork(capacity=5, t_move=100.0)
        path = [((0, 0), (1, 0)), ((1, 0), (2, 0))]
        assert net.traverse_path(path, 0.0) == 200.0

    def test_statistics(self):
        net = ChannelNetwork(capacity=1, t_move=10.0)
        channel = ((0, 0), (0, 1))
        net.traverse(channel, 0.0)
        net.traverse(channel, 0.0)
        assert net.total_traversals == 2
        assert net.traversals_of(channel) == 2
        assert net.busiest_channels(1) == [(channel, 2)]

    def test_reset(self):
        net = ChannelNetwork(capacity=1, t_move=10.0)
        channel = ((0, 0), (0, 1))
        net.traverse(channel, 0.0)
        net.reset()
        assert net.total_traversals == 0
        assert net.traverse(channel, 0.0) == 10.0

    def test_invalid_construction(self):
        with pytest.raises(FabricError):
            ChannelNetwork(capacity=0, t_move=10.0)
        with pytest.raises(FabricError):
            ChannelNetwork(capacity=1, t_move=0.0)
