"""Unit tests for the benchmark registry (repro.circuits.library)."""

from __future__ import annotations

import pytest

from repro.circuits.library import (
    BENCHMARKS,
    PAPER_TABLE3_ORDER,
    benchmark_names,
    build,
    build_ft,
)
from repro.exceptions import CircuitError


class TestRegistry:
    def test_all_table3_rows_registered(self):
        for name in PAPER_TABLE3_ORDER:
            assert name in BENCHMARKS

    def test_table3_has_eighteen_rows(self):
        assert len(PAPER_TABLE3_ORDER) == 18

    def test_ham3_is_registered_extra(self):
        assert "ham3" in BENCHMARKS
        assert "ham3" not in PAPER_TABLE3_ORDER

    def test_benchmark_names_covers_registry(self):
        assert set(benchmark_names()) == set(BENCHMARKS)

    def test_paper_counts_recorded_for_table3_rows(self):
        for name in PAPER_TABLE3_ORDER:
            spec = BENCHMARKS[name]
            assert spec.paper_qubits is not None
            assert spec.paper_ops is not None

    def test_paper_ops_sorted_in_table_order(self):
        ops = [BENCHMARKS[name].paper_ops for name in PAPER_TABLE3_ORDER]
        # Table 3 is "sorted based on the operation count" (two adjacent
        # rows swap in the paper itself: hwb15ps/hwb16ps tie region).
        assert ops[0] == 822 and ops[-1] == 983805
        assert sorted(ops)[-1] == ops[-1]


class TestBuild:
    def test_build_sets_paper_name(self):
        circuit = build("8bitadder")
        assert circuit.name == "8bitadder"
        assert circuit.num_qubits == 24

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(CircuitError, match="known benchmarks"):
            build("gf2^17mult")

    @pytest.mark.parametrize("name", ["8bitadder", "gf2^16mult", "ham3"])
    def test_build_is_deterministic(self, name):
        assert list(build(name)) == list(build(name))

    def test_gf2_family_qubits_are_3n(self):
        for name, n in [("gf2^16mult", 16), ("gf2^20mult", 20)]:
            assert build(name).num_qubits == 3 * n


class TestBuildFt:
    @pytest.mark.parametrize("name", ["8bitadder", "ham3", "ham15"])
    def test_build_ft_is_fault_tolerant(self, name):
        assert build_ft(name).is_ft()

    def test_share_ancillas_shrinks_qubits(self):
        plain = build_ft("ham15")
        shared = build_ft("ham15", share_ancillas=True)
        assert shared.num_qubits < plain.num_qubits
        assert len(shared) == len(plain)

    def test_ft_retains_benchmark_name(self):
        assert build_ft("8bitadder").name == "8bitadder"
