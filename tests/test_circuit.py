"""Unit tests for the Circuit container (repro.circuits.circuit)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GateKind, cnot, h, t, toffoli, x
from repro.exceptions import CircuitError


class TestConstruction:
    def test_default_qubit_names(self):
        circuit = Circuit(3)
        assert circuit.qubit_names == ("q0", "q1", "q2")

    def test_explicit_qubit_names(self):
        circuit = Circuit(2, qubit_names=["alice", "bob"])
        assert circuit.qubit_index("bob") == 1

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(CircuitError, match="entries"):
            Circuit(3, qubit_names=["a", "b"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CircuitError, match="distinct"):
            Circuit(2, qubit_names=["a", "a"])

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(-1)

    def test_zero_qubits_allowed(self):
        assert Circuit(0).num_qubits == 0


class TestQubitManagement:
    def test_add_qubit_returns_new_index(self):
        circuit = Circuit(2)
        assert circuit.add_qubit("anc") == 2
        assert circuit.num_qubits == 3

    def test_add_qubit_default_name_avoids_collisions(self):
        circuit = Circuit(0, qubit_names=[])
        circuit.add_qubit("q1")
        index = circuit.add_qubit()  # default would be q1, must skip
        assert circuit.qubit_names[index] != "q1"
        assert len(set(circuit.qubit_names)) == circuit.num_qubits

    def test_add_duplicate_name_rejected(self):
        circuit = Circuit(1)
        with pytest.raises(CircuitError, match="duplicate"):
            circuit.add_qubit("q0")

    def test_qubit_index_unknown_raises(self):
        with pytest.raises(CircuitError, match="unknown qubit"):
            Circuit(1).qubit_index("zz")

    def test_has_qubit(self):
        circuit = Circuit(1)
        assert circuit.has_qubit("q0")
        assert not circuit.has_qubit("q1")


class TestGateManagement:
    def test_append_and_iteration_preserve_order(self):
        circuit = Circuit(2)
        gates = [h(0), cnot(0, 1), t(1)]
        circuit.extend(gates)
        assert list(circuit) == gates
        assert circuit[1] == cnot(0, 1)
        assert len(circuit) == 3

    def test_append_out_of_range_qubit_rejected(self):
        circuit = Circuit(2)
        with pytest.raises(CircuitError, match="references qubit"):
            circuit.append(cnot(0, 2))

    def test_gates_tuple_is_stable_after_append(self):
        circuit = Circuit(2)
        circuit.append(h(0))
        first = circuit.gates
        circuit.append(h(1))
        assert len(first) == 1
        assert len(circuit.gates) == 2

    def test_equality(self):
        c1, c2 = Circuit(2), Circuit(2)
        for c in (c1, c2):
            c.append(cnot(0, 1))
        assert c1 == c2
        c2.append(h(0))
        assert c1 != c2


class TestStats:
    def test_counts_by_kind(self):
        circuit = Circuit(3)
        circuit.extend([h(0), h(1), cnot(0, 1), toffoli(0, 1, 2)])
        stats = circuit.stats()
        assert stats.counts_by_kind[GateKind.H] == 2
        assert stats.counts_by_kind[GateKind.CNOT] == 1
        assert stats.two_qubit_count == 1
        assert stats.gate_count == 4
        assert stats.qubit_count == 3
        assert not stats.is_ft  # the Toffoli

    def test_is_ft_true_for_ft_circuit(self, tiny_ft_circuit):
        assert tiny_ft_circuit.is_ft()
        assert tiny_ft_circuit.stats().is_ft

    def test_count_kind(self, tiny_ft_circuit):
        assert tiny_ft_circuit.count_kind(GateKind.CNOT) == 2

    def test_active_qubits_excludes_idle(self):
        circuit = Circuit(4)
        circuit.append(cnot(0, 2))
        assert circuit.active_qubits() == {0, 2}

    def test_one_qubit_ft_histogram(self, tiny_ft_circuit):
        histogram = tiny_ft_circuit.one_qubit_ft_histogram()
        assert histogram[GateKind.H] == 1
        assert histogram[GateKind.T] == 1
        assert GateKind.CNOT not in histogram


class TestCopyAndCompose:
    def test_copy_is_independent(self, tiny_ft_circuit):
        clone = tiny_ft_circuit.copy()
        clone.append(x(1))
        assert len(clone) == len(tiny_ft_circuit) + 1

    def test_copy_can_rename(self, tiny_ft_circuit):
        assert tiny_ft_circuit.copy(name="other").name == "other"

    def test_reversed_reverses_gate_order(self):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1)])
        assert list(circuit.reversed()) == [cnot(0, 1), h(0)]

    def test_concatenation(self):
        c1, c2 = Circuit(2), Circuit(2)
        c1.append(h(0))
        c2.append(cnot(0, 1))
        combined = c1 + c2
        assert list(combined) == [h(0), cnot(0, 1)]

    def test_concatenation_register_mismatch_rejected(self):
        with pytest.raises(CircuitError, match="identical qubit registers"):
            Circuit(2) + Circuit(3)

    def test_repr_mentions_name_and_sizes(self, tiny_ft_circuit):
        text = repr(tiny_ft_circuit)
        assert "tiny" in text
        assert "3" in text
