"""Unit tests for QODG statistics (repro.qodg.stats)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GateKind, cnot, h, t, x
from repro.circuits.generators import cnot_ladder, ham3
from repro.qodg.graph import build_qodg
from repro.qodg.critical_path import critical_path
from repro.qodg.stats import compute_stats, parallelism_profile


class TestParallelismProfile:
    def test_empty_circuit(self):
        assert parallelism_profile(build_qodg(Circuit(2))) == []

    def test_serial_chain_width_one(self):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), x(0)])
        assert parallelism_profile(build_qodg(circuit)) == [1, 1, 1]

    def test_fully_parallel_layer(self):
        circuit = Circuit(3)
        circuit.extend([h(0), h(1), h(2)])
        assert parallelism_profile(build_qodg(circuit)) == [3]

    def test_diamond_profile(self):
        circuit = Circuit(2)
        circuit.extend([h(0), h(1), t(1), cnot(0, 1)])
        # level 0: h(0), h(1); level 1: t(1); level 2: cnot.
        assert parallelism_profile(build_qodg(circuit)) == [2, 1, 1]

    def test_profile_sums_to_op_count(self):
        qodg = build_qodg(ham3())
        assert sum(parallelism_profile(qodg)) == 19

    def test_depth_equals_unit_critical_path(self):
        for circuit in (ham3(), cnot_ladder(5, layers=2)):
            qodg = build_qodg(circuit)
            depth = len(parallelism_profile(qodg))
            unit_length = critical_path(qodg, lambda g: 1.0).length
            assert depth == int(unit_length)


class TestComputeStats:
    def test_ham3_stats(self):
        stats = compute_stats(build_qodg(ham3()))
        assert stats.num_ops == 19
        assert stats.counts_by_kind[GateKind.CNOT] == 10
        assert stats.cnot_fraction == pytest.approx(10 / 19)
        assert stats.depth >= 1
        assert stats.max_width >= 1
        assert stats.average_width == pytest.approx(19 / stats.depth)

    def test_ladder_is_fully_serial(self):
        stats = compute_stats(build_qodg(cnot_ladder(6)))
        assert stats.depth == 5
        assert stats.max_width == 1
        assert stats.cnot_fraction == 1.0

    def test_empty_graph(self):
        stats = compute_stats(build_qodg(Circuit(3)))
        assert stats.num_ops == 0
        assert stats.depth == 0
        assert stats.average_width == 0.0
        assert stats.cnot_fraction == 0.0
