"""Tests for the estimation service (repro.service).

Covers request normalization/fingerprinting, the job queue (results,
failure capture, priority ordering), the coalescing contract — N
concurrent identical submits trigger exactly one backend computation —
and the ``leqa serve`` daemon protocol, both in-process and as a real
``serve → submit → result`` subprocess round trip (the CI smoke test).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import register_backend
from repro.engine.backend import BackendResult
from repro.exceptions import QueueDrainingError, QueueFullError, ServiceError
from repro.service import (
    EstimationServer,
    JobQueue,
    ServiceClient,
    normalize_request,
    request_fingerprint,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


class _RecordingBackend:
    """Test backend: logs each run and sleeps to hold the coalescing window."""

    calls: list[str] = []
    delay = 0.0

    name = "svc-recorder"

    def __init__(self, params=None, cache=None, **_options: object) -> None:
        self._params = params

    def run(self, circuit) -> BackendResult:
        _RecordingBackend.calls.append(circuit.name)
        if _RecordingBackend.delay:
            time.sleep(_RecordingBackend.delay)
        return BackendResult(
            backend=self.name,
            latency=1.0,
            elapsed_seconds=0.0,
            qubit_count=circuit.num_qubits,
            op_count=len(circuit),
            detail=None,
        )


register_backend(
    "svc-recorder", lambda **kw: _RecordingBackend(**kw), overwrite=True
)


@pytest.fixture(autouse=True)
def _reset_recorder():
    _RecordingBackend.calls = []
    _RecordingBackend.delay = 0.0
    yield


class TestNormalization:
    def test_defaults_are_made_explicit(self):
        normalized = normalize_request({"source": "ham3"})
        assert normalized["backend"] == "leqa"
        assert normalized["ft"] is True
        assert normalized["params"]["width"] == 60

    def test_spellings_share_a_fingerprint(self):
        implicit = normalize_request({"source": "ham3"})
        explicit = normalize_request(
            {
                "source": "ham3",
                "backend": "leqa",
                "ft": True,
                "params": {"width": 60, "height": 60},
            }
        )
        assert request_fingerprint(implicit) == request_fingerprint(explicit)

    def test_distinct_requests_differ(self):
        one = normalize_request({"source": "ham3"})
        two = normalize_request(
            {"source": "ham3", "params": {"width": 40, "height": 40}}
        )
        assert request_fingerprint(one) != request_fingerprint(two)

    def test_rejects_unknown_fields_sources_and_backends(self):
        with pytest.raises(ServiceError, match="unknown request field"):
            normalize_request({"source": "ham3", "typo": 1})
        with pytest.raises(ServiceError, match="neither a registered"):
            normalize_request({"source": "no_such_benchmark"})
        with pytest.raises(ServiceError, match="unknown backend"):
            normalize_request({"source": "ham3", "backend": "nope"})
        with pytest.raises(ServiceError, match="unknown params field"):
            normalize_request({"source": "ham3", "params": {"depth": 3}})
        with pytest.raises(ServiceError, match="non-empty 'source'"):
            normalize_request({})


class TestJobQueue:
    def test_submit_result_roundtrip(self):
        with JobQueue(workers=2) as queue:
            job_id = queue.submit(
                {"source": "ham3", "params": {"width": 12, "height": 12}}
            )
            snapshot = queue.result(job_id, timeout=60)
        assert snapshot["state"] == "done"
        assert snapshot["result"]["latency_seconds"] > 0
        assert snapshot["error"] is None

    def test_failure_captures_traceback(self):
        with JobQueue(workers=1) as queue:
            # A zero qubit speed fails parameter validation in the
            # worker; the record keeps the evidence, the worker survives.
            job_id = queue.submit(
                {"source": "ham3", "params": {"qubit_speed": 0.0}}
            )
            snapshot = queue.result(job_id, timeout=60)
        assert snapshot["state"] == "failed"
        assert snapshot["result"] is None
        assert snapshot["error"]
        assert "Error" in snapshot["traceback"]

    def test_unknown_job_id(self):
        queue = JobQueue(workers=1)
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.status("job-999999")
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.result("job-999999", timeout=1)

    def test_result_timeout(self):
        queue = JobQueue(workers=1)  # never started: job stays queued
        job_id = queue.submit({"source": "ham3"})
        with pytest.raises(ServiceError, match="still queued"):
            queue.result(job_id, timeout=0.05)

    def test_priority_beats_fifo(self):
        _RecordingBackend.delay = 0.2
        with JobQueue(workers=1) as queue:
            blocker = queue.submit(
                {"source": "ham3", "backend": "svc-recorder"}
            )
            # Wait until the blocker occupies the single worker, then
            # race a low-priority submission against a high-priority one.
            deadline = time.monotonic() + 10
            while queue.status(blocker)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            low = queue.submit(
                {"source": "8bitadder", "backend": "svc-recorder"},
                priority=0,
            )
            high = queue.submit(
                {"source": "ham15", "backend": "svc-recorder"}, priority=5
            )
            queue.result(low, timeout=60)
            queue.result(high, timeout=60)
        assert _RecordingBackend.calls == ["ham3", "ham15", "8bitadder"]

    def test_concurrent_identical_submits_coalesce_to_one_computation(self):
        _RecordingBackend.delay = 0.4
        spec = {"source": "ham3", "backend": "svc-recorder"}
        job_ids: list[str] = []
        with JobQueue(workers=4) as queue:
            def submit():
                job_ids.append(queue.submit(spec))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = queue.result(job_ids[0], timeout=60)
        assert len(set(job_ids)) == 1, "identical requests share one job"
        assert snapshot["submits"] == 8
        assert snapshot["state"] == "done"
        assert len(_RecordingBackend.calls) == 1, (
            "exactly one backend computation for N identical submits"
        )

    def test_coalesced_submit_escalates_priority(self):
        _RecordingBackend.delay = 0.2
        with JobQueue(workers=1) as queue:
            blocker = queue.submit(
                {"source": "ham3", "backend": "svc-recorder"}
            )
            deadline = time.monotonic() + 10
            while queue.status(blocker)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            ahead = queue.submit(
                {"source": "8bitadder", "backend": "svc-recorder"},
                priority=3,
            )
            slow = queue.submit(
                {"source": "ham15", "backend": "svc-recorder"}, priority=0
            )
            # The duplicate submit arrives urgent: the queued ham15 job
            # must jump ahead of the priority-3 job.
            resubmitted = queue.submit(
                {"source": "ham15", "backend": "svc-recorder"}, priority=9
            )
            assert resubmitted == slow
            assert queue.status(slow)["priority"] == 9
            queue.result(ahead, timeout=60)
            queue.result(slow, timeout=60)
        assert _RecordingBackend.calls == ["ham3", "ham15", "8bitadder"]

    def test_terminal_records_are_pruned_past_cap(self):
        with JobQueue(workers=1, max_records=2) as queue:
            ids = [
                queue.submit({"source": source})
                for source in ("ham3", "ham15", "8bitadder")
            ]
            for job_id in ids:
                try:
                    queue.result(job_id, timeout=60)
                except ServiceError:
                    pass  # oldest records may already be pruned
            deadline = time.monotonic() + 10
            while len(queue.jobs()) > 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        assert len(queue.jobs()) <= 2

    def test_terminal_jobs_stop_coalescing(self):
        with JobQueue(workers=1) as queue:
            first = queue.submit({"source": "ham3"})
            queue.result(first, timeout=60)
            second = queue.submit({"source": "ham3"})
        assert first != second

    def test_stats_shape(self):
        with JobQueue(workers=1) as queue:
            queue.result(queue.submit({"source": "ham3"}), timeout=60)
            stats = queue.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["workers"] == 1
        assert "estimate" in stats["cache"]
        assert stats["queue_depth"] == 0
        assert stats["draining"] is False
        assert stats["rejected"] == {"full": 0, "draining": 0}


class TestGracefulDrain:
    def test_drain_finishes_queued_work_and_rejects_new_submits(self):
        _RecordingBackend.delay = 0.1
        queue = JobQueue(workers=1)
        queue.start()
        ids = [
            queue.submit({"source": source, "backend": "svc-recorder"})
            for source in ("ham3", "ham15", "8bitadder")
        ]
        queue.begin_drain()
        with pytest.raises(QueueDrainingError, match="draining"):
            queue.submit(
                {
                    "source": "ham3",
                    "backend": "svc-recorder",
                    "params": {"width": 14, "height": 14},
                }
            )
        assert queue.drain(timeout=60) is True
        # Every job admitted before the drain ran to completion.
        for job_id in ids:
            assert queue.status(job_id)["state"] == "done"
        assert sorted(_RecordingBackend.calls) == [
            "8bitadder", "ham15", "ham3"
        ]
        stats = queue.stats()
        assert stats["draining"] is True
        assert stats["rejected"]["draining"] == 1

    def test_drain_is_idempotent_and_empty_queue_drains_immediately(self):
        queue = JobQueue(workers=1)
        queue.start()
        assert queue.drain(timeout=10) is True
        assert queue.drain(timeout=10) is True

    def test_drain_without_workers_reports_failure(self):
        queue = JobQueue(workers=1)  # never started
        queue.submit({"source": "ham3"})
        assert queue.drain(timeout=1) is False


class TestBoundedAdmission:
    def test_full_queue_rejects_with_retry_after(self):
        queue = JobQueue(workers=1, max_depth=2)  # never started: jobs wait
        queue.submit({"source": "ham3"})
        queue.submit({"source": "ham15"})
        with pytest.raises(QueueFullError, match="queue is full") as exc:
            queue.submit({"source": "8bitadder"})
        assert exc.value.retry_after > 0
        assert queue.stats()["rejected"]["full"] == 1

    def test_coalesced_submits_are_admitted_when_full(self):
        queue = JobQueue(workers=1, max_depth=1)
        first = queue.submit({"source": "ham3"})
        # The duplicate adds no work, so admission control lets it in.
        assert queue.submit({"source": "ham3"}) == first
        assert queue.stats()["coalesced"] == 1

    def test_depth_frees_up_as_jobs_run(self):
        with JobQueue(workers=1, max_depth=1) as queue:
            job_id = queue.submit({"source": "ham3"})
            queue.result(job_id, timeout=60)
            # The first job is terminal: the backlog slot is free again.
            other = queue.submit(
                {"source": "ham3", "params": {"width": 12, "height": 12}}
            )
            assert queue.result(other, timeout=60)["state"] == "done"

    def test_max_depth_validation(self):
        with pytest.raises(ServiceError, match="max_depth"):
            JobQueue(workers=1, max_depth=0)


@pytest.fixture()
def daemon(tmp_path):
    server = EstimationServer(tmp_path / "leqa.sock", workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.socket_path, timeout=30)
    deadline = time.monotonic() + 10
    while True:
        try:
            client.ping()
            break
        except ServiceError:
            assert time.monotonic() < deadline, "daemon failed to start"
            time.sleep(0.02)
    yield server, client
    try:
        client.shutdown()
    except ServiceError:
        pass
    thread.join(timeout=10)


class TestDaemon:
    def test_submit_status_result_stats(self, daemon):
        _server, client = daemon
        job_id = client.submit(
            {"source": "ham3", "params": {"width": 12, "height": 12}}
        )
        snapshot = client.result(job_id, timeout=60)
        assert snapshot["state"] == "done"
        assert snapshot["result"]["latency_seconds"] > 0
        status = client.status(job_id)
        assert status["state"] == "done"
        stats = client.stats()
        assert stats["jobs"]["done"] >= 1
        assert client.jobs()[0]["id"] == job_id

    def test_protocol_errors_are_reported(self, daemon):
        _server, client = daemon
        with pytest.raises(ServiceError, match="unknown job id"):
            client.status("job-424242")
        with pytest.raises(ServiceError, match="unknown op"):
            client.call({"op": "frobnicate"})
        with pytest.raises(ServiceError, match="neither a registered"):
            client.submit({"source": "no_such_benchmark"})

    def test_malformed_field_types_get_json_errors(self, daemon):
        # Raw socket clients can send anything: the daemon must answer
        # with ok:false, never drop the connection on a TypeError.
        _server, client = daemon
        with pytest.raises(ServiceError, match="malformed request"):
            client.call(
                {"op": "submit", "spec": {"source": "ham3"}, "priority": None}
            )
        with pytest.raises(ServiceError, match="malformed request"):
            client.call(
                {"op": "result", "job_id": "job-000001", "timeout": "soon"}
            )
        with pytest.raises(ServiceError, match="params"):
            client.submit({"source": "ham3", "params": {"width": "abc"}})
        assert client.ping()["ok"]  # the daemon survived all of it

    def test_second_daemon_refuses_live_socket(self, daemon):
        server, _client = daemon
        with pytest.raises(ServiceError, match="already serving"):
            EstimationServer(server.socket_path)

    def test_stats_carries_metrics_snapshot(self, daemon):
        _server, client = daemon
        job_id = client.submit(
            {"source": "ham3", "params": {"width": 12, "height": 12}}
        )
        client.result(job_id, timeout=60)
        stats = client.stats()
        metrics = stats["metrics"]
        # Per-stage latency histograms with percentile summaries.
        stage_hists = metrics["histograms"]["pipeline.stage.seconds"]
        assert any("stage=zones" in key for key in stage_hists)
        sample = next(iter(stage_hists.values()))
        assert sample["count"] >= 1
        assert {"p50", "p90", "p99"} <= set(sample)
        # Per-job end-to-end histogram and queue counters.
        job_hist = metrics["histograms"]["service.job.seconds"]
        assert any("state=done" in key for key in job_hist)
        assert metrics["counters"]["service.submitted"][""] >= 1
        # Cache counters are in the queue payload, one row per stage.
        assert stats["cache"]["zones"]["misses"] >= 1

    def test_trace_tails_recent_spans(self, daemon):
        _server, client = daemon
        job_id = client.submit(
            {"source": "ham3", "params": {"width": 16, "height": 16}}
        )
        client.result(job_id, timeout=60)
        spans = client.trace(limit=200)
        names = {span["name"] for span in spans}
        assert any(name.startswith("pipeline.") for name in names)
        assert all("seconds" in span for span in spans)

    def test_shutdown_drains_inflight_work(self, tmp_path):
        _RecordingBackend.delay = 0.2
        server = EstimationServer(tmp_path / "drain.sock", workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.socket_path, timeout=30)
        deadline = time.monotonic() + 10
        while True:
            try:
                client.ping()
                break
            except ServiceError:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        ids = [
            client.submit({"source": source, "backend": "svc-recorder"})
            for source in ("ham3", "ham15")
        ]
        queue = server.queue
        client.shutdown()
        # A submit racing the shutdown is rejected with the draining
        # status on the wire (the socket may already be closed for a
        # late-enough submit; both outcomes are a refusal).
        with pytest.raises(ServiceError, match="draining|cannot reach"):
            client.submit(
                {
                    "source": "ham3",
                    "backend": "svc-recorder",
                    "params": {"width": 14, "height": 14},
                }
            )
        thread.join(timeout=30)
        assert not thread.is_alive()
        # Every admitted job finished before the daemon exited.
        for job_id in ids:
            assert queue.status(job_id)["state"] == "done"
        assert len(_RecordingBackend.calls) == 2

    def test_daemon_max_depth_rejection_carries_retry_after(self, tmp_path):
        queue = JobQueue(workers=1, max_depth=1)  # not started: jobs wait
        server = EstimationServer(tmp_path / "full.sock", queue=queue)
        accepted = server.dispatch(
            {"op": "submit", "spec": {"source": "ham3"}}
        )
        assert accepted["ok"]
        rejected = server.dispatch(
            {"op": "submit", "spec": {"source": "ham15"}}
        )
        assert rejected["ok"] is False
        assert rejected["rejected"] == "full"
        assert rejected["retry_after"] > 0
        server._server.server_close()
        (tmp_path / "full.sock").unlink(missing_ok=True)


class TestServeSubprocessRoundTrip:
    """The CI smoke path: a real daemon process, real CLI clients."""

    def test_serve_submit_result(self, tmp_path):
        socket_path = tmp_path / "leqa.sock"
        store_path = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", str(socket_path),
                "--workers", "2",
                "--store", str(store_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        client = ServiceClient(socket_path, timeout=30)
        try:
            deadline = time.monotonic() + 60
            while True:
                try:
                    client.ping()
                    break
                except ServiceError:
                    assert server.poll() is None, server.communicate()[0]
                    assert time.monotonic() < deadline
                    time.sleep(0.1)
            submitted = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "submit", "ham3",
                    "--socket", str(socket_path),
                    "--wait", "--timeout", "120", "--json",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=180,
            )
            assert submitted.returncode == 0, submitted.stderr
            snapshot = json.loads(submitted.stdout)
            assert snapshot["state"] == "done"
            assert snapshot["result"]["latency_seconds"] > 0
            fetched = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "result",
                    snapshot["id"],
                    "--socket", str(socket_path), "--json",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert fetched.returncode == 0, fetched.stderr
            assert (
                json.loads(fetched.stdout)["result"]["latency"]
                == snapshot["result"]["latency"]
            )
            stats = client.stats()
            assert stats["store"]["writes"] > 0
        finally:
            try:
                client.shutdown()
            except ServiceError:
                server.kill()
            server.wait(timeout=30)
        assert not socket_path.exists()
