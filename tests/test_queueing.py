"""Unit tests for the M/M/1 congestion model (repro.core.queueing)."""

from __future__ import annotations

import pytest

from repro.core.queueing import (
    arrival_rate,
    average_wait,
    congested_latency,
    latency_profile,
    service_rate,
)
from repro.exceptions import EstimationError


class TestServiceAndArrival:
    def test_mu_is_capacity_over_duncong(self):
        assert service_rate(200.0, 4) == pytest.approx(0.02)

    def test_eq10_arrival_rate(self):
        # lambda = q Nc / ((1+q) d).
        q, d, nc = 7, 100.0, 5
        assert arrival_rate(q, d, nc) == pytest.approx(q * nc / ((1 + q) * d))

    def test_eq9_consistency_queue_length_recovered(self):
        # Plugging Eq. 10's lambda back into Eq. 9 must return q.
        q, d, nc = 9, 250.0, 5
        lam = arrival_rate(q, d, nc)
        mu = service_rate(d, nc)
        assert lam / (mu - lam) == pytest.approx(q)

    def test_littles_law_consistency(self):
        # W = q / lambda must equal Eq. 11's closed form.
        q, d, nc = 12, 80.0, 3
        lam = arrival_rate(q, d, nc)
        assert q / lam == pytest.approx(average_wait(q, d, nc))

    def test_zero_duncong_rejected_for_rates(self):
        with pytest.raises(EstimationError):
            service_rate(0.0, 5)


class TestEq8:
    def test_uncongested_region_flat(self):
        for q in range(0, 6):
            assert congested_latency(q, 100.0, 5) == 100.0

    def test_congested_region_formula(self):
        # q > Nc: d_q = (1+q) d / Nc.
        assert congested_latency(9, 100.0, 5) == pytest.approx(200.0)

    def test_boundary_exactly_at_capacity(self):
        assert congested_latency(5, 100.0, 5) == 100.0
        assert congested_latency(6, 100.0, 5) == pytest.approx(140.0)

    def test_congested_latency_matches_average_wait(self):
        # For q > Nc, Eq. 8's congested branch IS Eq. 11's W_avg.
        q, d, nc = 8, 123.0, 4
        assert congested_latency(q, d, nc) == pytest.approx(
            average_wait(q, d, nc)
        )

    def test_monotone_in_overlap(self):
        profile = latency_profile(30, 100.0, 5)
        assert all(b >= a for a, b in zip(profile, profile[1:]))

    def test_profile_length_and_head(self):
        profile = latency_profile(8, 50.0, 5)
        assert len(profile) == 8
        assert profile[:5] == [50.0] * 5

    def test_zero_duncong_gives_zero_latency(self):
        assert congested_latency(10, 0.0, 5) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"overlap": -1, "d_uncong": 1.0, "capacity": 5},
        {"overlap": 1, "d_uncong": -1.0, "capacity": 5},
        {"overlap": 1, "d_uncong": 1.0, "capacity": 0},
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(EstimationError):
            congested_latency(**kwargs)


class TestMD1Variant:
    def test_uncongested_region_matches_mm1(self):
        from repro.core.queueing import congested_latency_md1

        for q in range(6):
            assert congested_latency_md1(q, 100.0, 5) == 100.0

    def test_deterministic_service_waits_less_when_congested(self):
        from repro.core.queueing import congested_latency_md1

        for q in range(6, 40):
            assert congested_latency_md1(q, 100.0, 5) <= congested_latency(
                q, 100.0, 5
            )

    def test_md1_utilization_solution_satisfies_pk_formula(self):
        # rho from the closed form must reproduce L = rho + rho^2/(2(1-rho)).
        q = 9
        rho = (1 + q) - ((1 + q) ** 2 - 2 * q) ** 0.5
        recovered = rho + rho * rho / (2 * (1 - rho))
        assert recovered == pytest.approx(q)
        assert 0 < rho < 1

    def test_monotone_in_overlap(self):
        profile = latency_profile(25, 100.0, 4, model="md1")
        assert all(b >= a - 1e-9 for a, b in zip(profile, profile[1:]))

    def test_profile_model_dispatch(self):
        mm1 = latency_profile(10, 50.0, 3, model="mm1")
        md1 = latency_profile(10, 50.0, 3, model="md1")
        assert mm1[:3] == md1[:3]
        assert mm1[9] > md1[9]

    def test_unknown_model_rejected(self):
        with pytest.raises(EstimationError, match="unknown queue model"):
            latency_profile(5, 50.0, 3, model="mg1")

    def test_estimator_rejects_unknown_model(self):
        from repro.core.estimator import LEQAEstimator

        with pytest.raises(EstimationError, match="unknown queue model"):
            LEQAEstimator(queue_model="fifo")

    def test_estimator_md1_not_slower_than_mm1(self):
        from repro.circuits.generators import ham3
        from repro.core.estimator import LEQAEstimator
        from repro.fabric.params import FabricSpec, PhysicalParams

        params = PhysicalParams(fabric=FabricSpec(4, 4))
        circuit = ham3()
        mm1 = LEQAEstimator(params=params, queue_model="mm1").estimate(circuit)
        md1 = LEQAEstimator(params=params, queue_model="md1").estimate(circuit)
        assert md1.l_avg_cnot <= mm1.l_avg_cnot
