"""Scheduler engine equivalence (repro.qspr.scheduling).

The array and compiled-kernel engines' contract is *bitwise identity*
with the legacy scheduler: same per-op start/finish times, same latency,
same final qubit locations, same movement statistics, same traces.
These tests pin that contract across the registered circuit library and
the router's edge cases (channel at capacity ``N_c``, zero-length
journeys, single-ULB fabrics), for all three engines.

The kernel engine compiles its C backend on first use and degrades to
the array engine (with a :class:`RuntimeWarning`) where no compiler
exists — either way the comparisons below must hold, so the suite is
valid on compiler-less machines too.

Large library rows are skipped unless ``REPRO_FULL=1`` to keep the tier-1
suite fast; the covered subset still spans every gate kind, both routing
modes, both visit orders and congestion-heavy fabrics.
"""

from __future__ import annotations

import functools
import os
import sys
import warnings

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, h, t, x
from repro.circuits.library import BENCHMARKS, build
from repro.circuits.decompose import synthesize_ft
from repro.fabric.params import FabricSpec, PhysicalParams
from repro.fabric.tqa import TQA
from repro.qodg.iig import build_iig
from repro.qspr.placement import make_placement
from repro.qspr.routing import Router, SlotRouter
from repro.qspr.scheduling import compile_qodg, schedule_circuit

#: Synthesis-level op-count cap for the default (fast) run; REPRO_FULL=1
#: removes it and covers the entire registry.
DEFAULT_OP_CAP = 1000

#: One build per registry row for the whole module: the row filter runs
#: at collection time and the fixture reuses the same circuits.
_cached_build = functools.lru_cache(maxsize=None)(build)


def library_rows() -> list[str]:
    if os.environ.get("REPRO_FULL") == "1":
        return list(BENCHMARKS)
    return [
        name
        for name in BENCHMARKS
        if len(_cached_build(name)) <= DEFAULT_OP_CAP
    ]


def all_engines(circuit, placement, params, **kwargs):
    legacy = schedule_circuit(
        circuit, placement, params, engine="legacy", **kwargs
    )
    array = schedule_circuit(
        circuit, placement, params, engine="array", **kwargs
    )
    # The kernel path has no trace recorder (tracing falls through to the
    # array engine), so compare it untraced; without a C compiler it
    # degrades to the array engine with a warning — still identical.
    kernel_kwargs = dict(kwargs)
    kernel_kwargs.pop("record_trace", None)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        kernel = schedule_circuit(
            circuit, placement, params, engine="kernel", **kernel_kwargs
        )
    return legacy, array, kernel


def assert_identical(reference, other, check_trace=True):
    assert other.latency == reference.latency
    assert other.finish_times == reference.finish_times
    assert other.final_locations == reference.final_locations
    assert other.stats == reference.stats
    if check_trace and reference.trace is not None:
        assert list(other.trace) == list(reference.trace)


@pytest.fixture(scope="module")
def ft_library():
    return {
        name: synthesize_ft(_cached_build(name)) for name in library_rows()
    }


class TestLibraryEquivalence:
    @pytest.mark.parametrize("name", library_rows())
    def test_identical_schedule_on_library(self, name, ft_library):
        """Bit-identical op start times and latency on every library row."""
        circuit = ft_library[name]
        params = PhysicalParams(fabric=FabricSpec(30, 30))
        placement = make_placement(
            "iig_greedy", build_iig(circuit), TQA(params.fabric)
        )
        legacy, array, kernel = all_engines(
            circuit, placement, params, record_trace=True
        )
        assert_identical(legacy, array)
        assert_identical(legacy, kernel, check_trace=False)

    @pytest.mark.parametrize("routing", ["maze", "xy"])
    @pytest.mark.parametrize("order", ["program", "alap"])
    def test_identical_across_modes_and_orders(
        self, routing, order, ft_library
    ):
        circuit = ft_library["ham3"]
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        placement = make_placement(
            "iig_greedy", build_iig(circuit), TQA(params.fabric)
        )
        legacy, array, kernel = all_engines(
            circuit, placement, params, routing_mode=routing, order=order,
        )
        assert_identical(legacy, array)
        assert_identical(legacy, kernel)

    def test_identical_under_heavy_congestion(self, ft_library):
        """A saturated fabric (capacity 1, tiny grid) drives every journey
        through the maze search."""
        circuit = ft_library["8bitadder"]
        params = PhysicalParams(
            fabric=FabricSpec(5, 5), channel_capacity=1
        )
        placement = make_placement(
            "row_major", build_iig(circuit), TQA(params.fabric)
        )
        legacy, array, kernel = all_engines(
            circuit, placement, params, record_trace=True
        )
        assert_identical(legacy, array)
        assert_identical(legacy, kernel, check_trace=False)

    def test_identical_with_prebuilt_compiled_ops(self, ft_library):
        circuit = ft_library["ham3"]
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        placement = make_placement(
            "iig_greedy", build_iig(circuit), TQA(params.fabric)
        )
        compiled = compile_qodg(circuit, params.delays.by_kind())
        legacy = schedule_circuit(circuit, placement, params, engine="legacy")
        for engine in ("array", "kernel"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = schedule_circuit(
                    circuit, placement, params, engine=engine,
                    compiled=compiled,
                )
            assert_identical(legacy, result)

    def test_unknown_engine_rejected(self):
        from repro.exceptions import MappingError

        circuit = Circuit(1)
        circuit.append(h(0))
        params = PhysicalParams(fabric=FabricSpec(4, 4))
        with pytest.raises(MappingError, match="unknown scheduler engine"):
            schedule_circuit(circuit, [(0, 0)], params, engine="numpy")


class TestKernelFallback:
    """The kernel engine must degrade to the array engine, loudly."""

    def _ham3_setup(self, ft_library):
        circuit = ft_library["ham3"]
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        placement = make_placement(
            "iig_greedy", build_iig(circuit), TQA(params.fabric)
        )
        return circuit, placement, params

    def test_missing_kernel_module_degrades_with_warning(
        self, monkeypatch, ft_library
    ):
        """Hiding the compiled backend's module forces the fallback: the
        schedule is still bitwise the array engine's, plus a warning."""
        circuit, placement, params = self._ham3_setup(ft_library)
        array = schedule_circuit(
            circuit, placement, params, engine="array"
        )
        import repro.qspr

        # Both the sys.modules entry and the package attribute must go:
        # either one would satisfy `from . import _kernel` on its own.
        monkeypatch.delattr(repro.qspr, "_kernel", raising=False)
        monkeypatch.setitem(sys.modules, "repro.qspr._kernel", None)
        with pytest.warns(
            RuntimeWarning, match="falling back to engine='array'"
        ):
            fallen_back = schedule_circuit(
                circuit, placement, params, engine="kernel"
            )
        assert_identical(array, fallen_back)

    def test_kernel_load_failure_degrades_with_warning(
        self, monkeypatch, ft_library
    ):
        """A backend that imports but cannot build its shared object
        (no compiler, compile error) degrades the same way."""
        from repro.qspr import _kernel

        circuit, placement, params = self._ham3_setup(ft_library)
        array = schedule_circuit(
            circuit, placement, params, engine="array"
        )

        def broken_load():
            raise RuntimeError("no C compiler found (test stub)")

        monkeypatch.setattr(_kernel, "load", broken_load)
        with pytest.warns(
            RuntimeWarning, match="falling back to engine='array'"
        ):
            fallen_back = schedule_circuit(
                circuit, placement, params, engine="kernel"
            )
        assert_identical(array, fallen_back)

    def test_mapping_result_reports_requested_engine(self, ft_library):
        from repro.qspr.mapper import map_circuit

        circuit = ft_library["ham3"]
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = map_circuit(circuit, params, engine="kernel")
        assert result.engine == "kernel"
        assert map_circuit(circuit, params).engine == "array"
        assert result.latency == map_circuit(circuit, params).latency


class TestSlotRouterEdgeCases:
    def test_zero_length_journey(self):
        router = SlotRouter(4, 4, capacity=2, t_move=100.0)
        arrival, hops, wait = router.move(5, 5, 42.0)
        assert (arrival, hops, wait) == (42.0, 0, 0.0)
        assert router.total_moves == 0

    def test_channel_queues_at_capacity(self):
        """With ``N_c`` slots, crossing ``N_c + 1`` qubits queues the last."""
        capacity = 3
        router = SlotRouter(4, 4, capacity=capacity, t_move=100.0)
        height = 4
        source, target = 0 * height + 0, 1 * height + 0  # one hop east
        arrivals = [router.move(source, target, 0.0)[0] for _ in range(4)]
        assert arrivals[:capacity] == [100.0] * capacity
        assert arrivals[capacity] == 200.0
        assert router.total_wait == 100.0

    def test_capacity_queue_matches_legacy_router(self):
        params = PhysicalParams(
            fabric=FabricSpec(6, 6), channel_capacity=2
        )
        tqa = TQA(params.fabric)
        legacy = Router(tqa, params)
        array = SlotRouter(6, 6, capacity=2, t_move=params.t_move)
        height = 6
        pattern = [((0, 0), (2, 1)), ((0, 0), (2, 1)), ((0, 1), (2, 1)),
                   ((1, 0), (1, 3)), ((0, 0), (2, 1))]
        for src, dst in pattern:
            mv = legacy.move(src, dst, 0.0)
            arrival, hops, wait = array.move(
                src[0] * height + src[1], dst[0] * height + dst[1], 0.0
            )
            assert arrival == mv.arrival
            assert hops == mv.hops
            assert wait == mv.wait
        assert array.total_hops == legacy.total_hops
        assert array.total_wait == legacy.total_congestion_wait

    def test_single_ulb_fabric_schedules_in_place(self):
        """A 1x1 fabric has no channels; everything executes in the only
        ULB and CNOT operands meet in place."""
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1), t(1), x(0)])
        params = PhysicalParams(fabric=FabricSpec(1, 1))
        placement = [(0, 0), (0, 0)]
        legacy, array, kernel = all_engines(
            circuit, placement, params, record_trace=True
        )
        assert_identical(legacy, array)
        assert_identical(legacy, kernel, check_trace=False)
        assert array.stats.total_moves == 0
        assert array.final_locations == ((0, 0), (0, 0))

    def test_single_row_and_single_column_fabrics(self):
        circuit = Circuit(3)
        circuit.extend([h(0), cnot(0, 1), cnot(1, 2), t(2), x(0)])
        for width, height in ((6, 1), (1, 6)):
            params = PhysicalParams(fabric=FabricSpec(width, height))
            placement = make_placement(
                "row_major", build_iig(circuit), TQA(params.fabric)
            )
            legacy, array, kernel = all_engines(circuit, placement, params)
            assert_identical(legacy, array)
            assert_identical(legacy, kernel)

    def test_unknown_mode_rejected(self):
        from repro.exceptions import MappingError

        with pytest.raises(MappingError, match="unknown routing mode"):
            SlotRouter(4, 4, capacity=1, t_move=100.0, mode="teleport")
