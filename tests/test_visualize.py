"""Unit tests for ASCII heatmaps (repro.analysis.visualize)."""

from __future__ import annotations

import pytest

from repro.analysis.visualize import (
    INTENSITY_GLYPHS,
    congestion_heatmap,
    coverage_heatmap,
    render_grid,
    utilization_heatmap,
)
from repro.circuits.generators import ham3
from repro.exceptions import ReproError
from repro.fabric.params import FabricSpec, PhysicalParams
from repro.qspr.mapper import QSPRMapper


class TestRenderGrid:
    def test_dimensions(self):
        text = render_grid({(0, 0): 1.0}, 4, 3, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 3 + 1  # title + rows + legend
        assert all(len(line) == 6 for line in lines[1:4])  # |....|

    def test_peak_cell_gets_saturated_glyph(self):
        text = render_grid({(1, 1): 2.0, (0, 0): 1.0}, 3, 3, title="T")
        lines = text.splitlines()
        # y=1 row is lines[2] (rows top-down from y=2); x=1 is col 2.
        assert lines[2][2] == INTENSITY_GLYPHS[-1]

    def test_zero_and_missing_cells_blank(self):
        text = render_grid({}, 2, 2, title="T")
        for line in text.splitlines()[1:3]:
            assert line == "|  |"

    def test_y_axis_points_up(self):
        text = render_grid({(0, 0): 1.0}, 2, 2, title="T")
        lines = text.splitlines()
        assert lines[2][1] == INTENSITY_GLYPHS[-1]  # bottom row
        assert lines[1][1] == " "  # top row empty

    def test_invalid_dimensions(self):
        with pytest.raises(ReproError):
            render_grid({}, 0, 3, title="T")


class TestHeatmaps:
    def test_coverage_center_brighter_than_corner(self):
        text = coverage_heatmap(9, 9, 9.0)
        lines = text.splitlines()
        center = lines[5][5]
        corner = lines[9][1]
        assert INTENSITY_GLYPHS.index(center) > INTENSITY_GLYPHS.index(corner)

    def test_utilization_heatmap_from_trace(self):
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        result = QSPRMapper(params=params, record_trace=True).map(ham3())
        text = utilization_heatmap(result.schedule.trace, 8, 8)
        assert "busy fraction" in text
        # At least one non-blank cell.
        body = "".join(text.splitlines()[1:9])
        assert any(ch not in " |" for ch in body)

    def test_congestion_heatmap_from_trace(self):
        params = PhysicalParams(fabric=FabricSpec(8, 8))
        result = QSPRMapper(params=params, record_trace=True).map(ham3())
        text = congestion_heatmap(result.schedule.trace, 8, 8)
        assert "operand hops" in text
