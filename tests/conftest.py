"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.decompose import synthesize_ft
from repro.circuits.gates import cnot, h, t, tdg, x
from repro.circuits.generators import ripple_adder
from repro.fabric.params import FabricSpec, GateDelays, PhysicalParams


@pytest.fixture
def small_params() -> PhysicalParams:
    """A small fabric with Table-1 delays, convenient for fast tests."""
    return PhysicalParams(fabric=FabricSpec(10, 10))


@pytest.fixture
def unit_delay_params() -> PhysicalParams:
    """All FT gates take 1 µs — makes critical paths countable by hand."""
    ones = GateDelays(
        h=1.0, t=1.0, tdg=1.0, x=1.0, y=1.0, z=1.0, s=1.0, sdg=1.0, cnot=1.0
    )
    return PhysicalParams(delays=ones, fabric=FabricSpec(8, 8))


@pytest.fixture
def tiny_ft_circuit() -> Circuit:
    """A hand-written 3-qubit FT circuit: H, CNOT, T, CNOT, T†, X."""
    circuit = Circuit(3, name="tiny")
    circuit.extend(
        [h(0), cnot(0, 1), t(1), cnot(1, 2), tdg(2), x(0)]
    )
    return circuit


@pytest.fixture
def adder_ft() -> Circuit:
    """The FT netlist of the 4-bit ripple adder (450-ish ops, 12 qubits)."""
    return synthesize_ft(ripple_adder(4))
