"""Streaming front-end vs materialized equivalence (repro.circuits.stream).

The out-of-core chunked path's contract is *bitwise identity* with the
materialized front-end: identical tables, fingerprints, FT output, IIG
CSR arrays and final :class:`LatencyEstimate` (minus wall time) for any
chunk size.  These tests pin that contract across the whole workload
registry and the awkward chunk sizes — 1 row per chunk, a prime, and one
larger than the circuit.

Large registry members are skipped unless ``REPRO_FULL=1`` (same policy
as the scheduler-equivalence suite); the default subset still covers
every family and every streaming pass.
"""

from __future__ import annotations

import dataclasses
import functools
import io
import os

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.generators import random_ft, random_reversible
from repro.circuits.library import BENCHMARKS, build
from repro.circuits.parser import reads_real, writes_qasm_lite, writes_real
from repro.circuits.stream import (
    DEFAULT_CHUNK_SIZE,
    IIGAccumulator,
    StreamProfile,
    assemble,
    estimate_stream,
    lower_ft_stream,
    optimize_stream,
    stream_fingerprint,
    stream_random_ft,
    stream_random_nct,
    stream_read_qasm_lite,
    stream_reads_real,
    stream_table,
)
from repro.circuits.table import lower_ft, optimize_table
from repro.core.estimator import LEQAEstimator
from repro.exceptions import CircuitError, EstimationError, ParseError
from repro.fabric.params import FabricSpec, PhysicalParams
from repro.qodg.iig import build_iig
from repro.workloads import WORKLOADS, build_member, enumerate_members

#: Build-level op cap for the default (fast) run; REPRO_FULL=1 removes it.
DEFAULT_OP_CAP = 1000

#: Members whose FT table exceeds this only run the cheap chunk sizes
#: (chunk size 1 costs one python round-trip per row).
UNIT_CHUNK_OP_CAP = 4000

_cached_build = functools.lru_cache(maxsize=None)(build)


def build_source(source: str) -> Circuit:
    """Build a registry member (library rows are plain benchmark names)."""
    if source in BENCHMARKS:
        return _cached_build(source)
    return build_member(source)


def registry_members() -> list[str]:
    members: list[str] = []
    for family in WORKLOADS:
        members.extend(enumerate_members(family))
    if os.environ.get("REPRO_FULL") == "1":
        return members
    return [
        name
        for name in members
        if name not in BENCHMARKS
        or len(_cached_build(name)) <= DEFAULT_OP_CAP
    ]


def chunk_sizes_for(op_count: int) -> tuple[int, ...]:
    """1 row, a prime, and one chunk larger than the whole circuit."""
    sizes = (1, 7, op_count + 1)
    if op_count > UNIT_CHUNK_OP_CAP:
        return sizes[1:]
    return sizes


def assert_tables_equal(streamed, expected) -> None:
    assert streamed.num_qubits == expected.num_qubits
    assert streamed.qubit_names == expected.qubit_names
    assert np.array_equal(streamed.kind, expected.kind)
    assert np.array_equal(streamed.ctrl, expected.ctrl)
    assert np.array_equal(streamed.ctrl2, expected.ctrl2)
    assert np.array_equal(streamed.target, expected.target)
    assert np.array_equal(streamed.target2, expected.target2)
    assert np.array_equal(streamed.extra_indptr, expected.extra_indptr)
    assert np.array_equal(streamed.extra, expected.extra)
    assert streamed.fingerprint() == expected.fingerprint()


def assert_iig_equal(streamed, expected) -> None:
    got, want = streamed.arrays(), expected.arrays()
    assert np.array_equal(got.indptr, want.indptr)
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.weights, want.weights)
    assert np.array_equal(got.degrees, want.degrees)
    assert np.array_equal(got.weight_sums, want.weight_sums)
    assert streamed.total_weight == expected.total_weight


def assert_estimates_equal(streamed, expected) -> None:
    """Every field except wall time, bitwise."""
    for field in dataclasses.fields(type(expected)):
        if field.name == "elapsed_seconds":
            continue
        assert getattr(streamed, field.name) == getattr(
            expected, field.name
        ), field.name


@pytest.fixture(scope="module")
def small_params() -> PhysicalParams:
    return PhysicalParams(fabric=FabricSpec(12, 12))


class TestRegistryEquivalence:
    """The satellite contract: every family, every pass, bitwise."""

    @pytest.mark.parametrize("member", registry_members())
    def test_streamed_pipeline_matches_materialized(
        self, member, small_params
    ):
        raw = build_source(member).table()
        ft_expected = lower_ft(raw)
        iig_expected = build_iig(Circuit.from_table(ft_expected))
        estimate_expected = LEQAEstimator(params=small_params).estimate(
            Circuit.from_table(ft_expected)
        )
        for chunk_size in chunk_sizes_for(len(ft_expected)):
            # Tables and fingerprints survive the chunk round-trip.
            assert_tables_equal(
                assemble(stream_table(raw, chunk_size)), raw
            )
            assert (
                stream_fingerprint(stream_table(raw, chunk_size))
                == raw.fingerprint()
            )
            # FT synthesis as a chunk-wise pass.
            ft_streamed = assemble(
                lower_ft_stream(stream_table(raw, chunk_size))
            )
            assert_tables_equal(ft_streamed, ft_expected)
            # IIG accumulation.
            accumulator = IIGAccumulator()
            for chunk in stream_table(ft_expected, chunk_size):
                accumulator.update(chunk)
            assert_iig_equal(
                accumulator.finish(ft_expected.num_qubits), iig_expected
            )
            # End-to-end estimate over the chunk stream.
            streamed = estimate_stream(
                lower_ft_stream(stream_table(raw, chunk_size)),
                small_params,
            )
            assert_estimates_equal(streamed, estimate_expected)


class TestGeneratorStreams:
    @pytest.mark.parametrize("chunk_size", [1, 7, 10**9])
    def test_random_ft_stream_matches(self, chunk_size):
        expected = random_ft(10, 300, seed=5, cnot_fraction=0.4).table()
        streamed = assemble(
            stream_random_ft(
                10, 300, seed=5, cnot_fraction=0.4, chunk_size=chunk_size
            )
        )
        assert_tables_equal(streamed, expected)

    @pytest.mark.parametrize("chunk_size", [1, 13, 10**9])
    def test_random_nct_stream_matches(self, chunk_size):
        expected = random_reversible(
            8, 250, seed=9, toffoli_fraction=0.3
        ).table()
        streamed = assemble(
            stream_random_nct(
                8, 250, seed=9, toffoli_fraction=0.3, chunk_size=chunk_size
            )
        )
        assert_tables_equal(streamed, expected)

    def test_chunk_size_validated(self):
        with pytest.raises(CircuitError, match="chunk_size must be >= 1"):
            list(stream_random_ft(4, 10, seed=1, chunk_size=0))
        with pytest.raises(CircuitError, match="chunk_size must be an int"):
            list(stream_random_ft(4, 10, seed=1, chunk_size=2.5))


class TestOptimizeStream:
    @pytest.mark.parametrize("chunk_size", [1, 7, 10**9])
    def test_matches_materialized_peephole(self, chunk_size):
        # random_nct lowered to FT is dense with adjacent cancellations.
        raw = random_reversible(8, 200, seed=3).table()
        ft = lower_ft(raw)
        expected = optimize_table(ft)
        streamed = assemble(
            optimize_stream(
                stream_table(ft, chunk_size), chunk_size=chunk_size
            )
        )
        assert_tables_equal(streamed, expected)

    def test_matches_on_registry_sample(self):
        ft = lower_ft(build_source("ham15").table())
        expected = optimize_table(ft)
        streamed = assemble(
            optimize_stream(stream_table(ft, 97), chunk_size=97)
        )
        assert_tables_equal(streamed, expected)


class TestParserStreams:
    @pytest.fixture(scope="class")
    def real_text(self) -> str:
        return writes_real(random_reversible(6, 120, seed=2))

    @pytest.mark.parametrize("chunk_size", [1, 7, 10**9])
    def test_real_stream_matches(self, real_text, chunk_size):
        expected = reads_real(real_text).table()
        streamed = assemble(
            stream_reads_real(real_text, chunk_size=chunk_size)
        )
        assert_tables_equal(streamed, expected)

    @pytest.mark.parametrize("chunk_size", [1, 7, 10**9])
    def test_qasm_lite_stream_matches(self, chunk_size):
        circuit = lower_ft(build_source("ham3").table())
        text = writes_qasm_lite(Circuit.from_table(circuit))
        from repro.circuits.parser import reads_qasm_lite

        expected = reads_qasm_lite(text).table()
        streamed = assemble(
            stream_read_qasm_lite(io.StringIO(text), chunk_size=chunk_size)
        )
        assert np.array_equal(streamed.kind, expected.kind)
        assert streamed.fingerprint() == expected.fingerprint()

    @pytest.mark.parametrize(
        "text",
        [
            ".numvars 2\n.variables a b\n.begin\nt9 a b\n.end\n",
            ".numvars 2\n.variables a\n.begin\n.end\n",
            ".numvars 2\n.variables a b\n.begin\nt2 a c\n.end\n",
            ".numvars 2\n.variables a b\n.begin\nt2 a a\n.end\n",
        ],
    )
    def test_error_parity_with_materialized_parser(self, text):
        """Malformed input raises the same ParseError, same message."""
        with pytest.raises(ParseError) as expected:
            reads_real(text)
        with pytest.raises(ParseError) as streamed:
            list(stream_reads_real(text))
        assert str(streamed.value) == str(expected.value)


class TestStreamingErrors:
    def test_lower_ft_stream_requires_fixed_register(self):
        # qasm-lite may declare qubits mid-stream; FT synthesis cannot
        # allocate ancillas against a still-growing register.
        text = "qubit q0\nqubit q1\ncx q0 q1\nqubit q2\ncx q1 q2\n"
        chunks = stream_read_qasm_lite(io.StringIO(text), chunk_size=1)
        with pytest.raises(CircuitError, match="fixed input register"):
            list(lower_ft_stream(chunks))

    def test_estimate_stream_rejects_non_ft_gates(self, small_params):
        raw = random_reversible(5, 20, seed=1).table()
        with pytest.raises(
            EstimationError, match="is not an FT operation"
        ):
            estimate_stream(stream_table(raw, 7), small_params)

    def test_assemble_rejects_empty_stream(self):
        with pytest.raises(CircuitError, match="empty chunk stream"):
            assemble(iter(()))


class TestStreamProfile:
    def test_profile_collects_per_chunk_samples(self, small_params):
        raw = build_source("ham3").table()
        profile = StreamProfile()
        estimate_stream(
            lower_ft_stream(stream_table(raw, 7), profile=profile),
            small_params,
            profile=profile,
        )
        totals = profile.stage_totals()
        assert set(totals) >= {"ft", "ingest", "critical"}
        ops = len(lower_ft(raw))
        for stage in ("ft", "ingest", "critical"):
            chunks, rows, seconds = totals[stage]
            assert chunks >= 1
            assert rows == ops
            assert seconds >= 0.0

    def test_default_chunk_size_is_sane(self):
        assert DEFAULT_CHUNK_SIZE >= 1024
