"""Unit tests for the QODG (repro.qodg.graph)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, h, t, x
from repro.circuits.generators import ham3
from repro.qodg.graph import build_qodg
from repro.exceptions import GraphError


class TestStructure:
    def test_empty_circuit(self):
        qodg = build_qodg(Circuit(2))
        assert qodg.num_ops == 0
        assert qodg.num_nodes == 2  # start + end
        assert qodg.successors(qodg.start) == ()

    def test_single_one_qubit_op(self):
        circuit = Circuit(1)
        circuit.append(h(0))
        qodg = build_qodg(circuit)
        assert qodg.predecessors(0) == (qodg.start,)
        assert qodg.successors(0) == (qodg.end,)
        assert qodg.in_degree(0) == 1
        assert qodg.out_degree(0) == 1

    def test_chain_on_one_qubit(self):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), x(0)])
        qodg = build_qodg(circuit)
        assert qodg.successors(0) == (1,)
        assert qodg.successors(1) == (2,)
        assert qodg.predecessors(2) == (1,)

    def test_cnot_has_two_in_two_out_edges(self):
        circuit = Circuit(2)
        circuit.extend([h(0), h(1), cnot(0, 1), h(0), h(1)])
        qodg = build_qodg(circuit)
        assert set(qodg.predecessors(2)) == {0, 1}
        assert set(qodg.successors(2)) == {3, 4}

    def test_parallel_edges_merged(self):
        # Two CNOTs on the same pair: the second depends on the first via
        # BOTH qubits, but the QODG keeps a single merged edge.
        circuit = Circuit(2)
        circuit.extend([cnot(0, 1), cnot(0, 1)])
        qodg = build_qodg(circuit)
        assert qodg.successors(0) == (1,)
        assert qodg.predecessors(1) == (0,)

    def test_start_feeds_first_touch_of_each_qubit(self):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1)])
        qodg = build_qodg(circuit)
        # h(0) gets start via qubit 0; the CNOT gets start via qubit 1.
        assert qodg.start in qodg.predecessors(1)
        assert qodg.predecessors(0) == (qodg.start,)

    def test_merged_start_edge_for_two_fresh_operands(self):
        circuit = Circuit(2)
        circuit.append(cnot(0, 1))
        qodg = build_qodg(circuit)
        assert qodg.predecessors(0) == (qodg.start,)  # merged, not doubled
        assert qodg.successors(qodg.start) == (0,)

    def test_idle_qubits_do_not_connect_start_to_end(self):
        circuit = Circuit(3)
        circuit.append(h(0))
        qodg = build_qodg(circuit)
        assert qodg.predecessors(qodg.end) == (0,)

    def test_ham3_figure2_counts(self):
        # Figure 2(b): 19 operation nodes plus start and end.
        qodg = build_qodg(ham3())
        assert qodg.num_ops == 19
        assert qodg.num_nodes == 21


class TestAccessors:
    def test_gate_lookup(self):
        circuit = Circuit(1)
        circuit.append(h(0))
        qodg = build_qodg(circuit)
        assert qodg.gate(0) == h(0)

    def test_gate_of_start_rejected(self):
        qodg = build_qodg(Circuit(1))
        with pytest.raises(GraphError, match="not an operation"):
            qodg.gate(qodg.start)

    def test_out_of_range_node_rejected(self):
        qodg = build_qodg(Circuit(1))
        with pytest.raises(GraphError, match="out of range"):
            qodg.predecessors(99)

    def test_topological_order_is_start_ops_end(self):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1)])
        qodg = build_qodg(circuit)
        assert list(qodg.topological_order()) == [2, 0, 1, 3]

    def test_topological_property_holds(self, adder_ft):
        qodg = build_qodg(adder_ft)
        order = {node: rank for rank, node in enumerate(qodg.topological_order())}
        for node in qodg.operation_nodes():
            for pred in qodg.predecessors(node):
                assert order[pred] < order[node]

    def test_edge_count_consistency(self, adder_ft):
        qodg = build_qodg(adder_ft)
        out_edges = sum(qodg.out_degree(n) for n in range(qodg.num_nodes))
        in_edges = sum(qodg.in_degree(n) for n in range(qodg.num_nodes))
        assert out_edges == in_edges == qodg.num_edges

    def test_to_networkx_roundtrip(self):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1)])
        qodg = build_qodg(circuit)
        graph = qodg.to_networkx()
        assert graph.number_of_nodes() == qodg.num_nodes
        assert graph.number_of_edges() == qodg.num_edges
        import networkx as nx

        assert nx.is_directed_acyclic_graph(graph)


class TestCSRCore:
    def test_csr_matches_adjacency_lists(self, adder_ft):
        qodg = build_qodg(adder_ft)
        csr = qodg.csr()
        for node in range(qodg.num_nodes):
            assert tuple(csr.predecessors_of(node)) == qodg.predecessors(node)
            assert tuple(csr.successors_of(node)) == qodg.successors(node)

    def test_degree_views_match_accessors(self, adder_ft):
        qodg = build_qodg(adder_ft)
        csr = qodg.csr()
        in_degrees = csr.in_degrees().tolist()
        out_degrees = csr.out_degrees().tolist()
        for node in range(qodg.num_nodes):
            assert in_degrees[node] == qodg.in_degree(node)
            assert out_degrees[node] == qodg.out_degree(node)

    def test_op_indegrees_exclude_start_edges(self):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1)])
        qodg = build_qodg(circuit)
        counts = qodg.csr().op_indegrees().tolist()
        # h(0) is fed by start only; the CNOT depends on h(0) (qubit 0)
        # and start (qubit 1).
        assert counts == [0, 1]

    def test_per_qubit_operation_lists(self):
        circuit = Circuit(3)
        circuit.extend([h(0), cnot(0, 1), cnot(1, 2), h(2)])
        csr = build_qodg(circuit).csr()
        assert csr.ops_of_qubit(0).tolist() == [0, 1]
        assert csr.ops_of_qubit(1).tolist() == [1, 2]
        assert csr.ops_of_qubit(2).tolist() == [2, 3]

    def test_csr_is_cached(self, adder_ft):
        qodg = build_qodg(adder_ft)
        assert qodg.csr() is qodg.csr()
