"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.decompose import synthesize_ft
from repro.circuits.generators import random_reversible
from repro.circuits.simulate import simulate_basis
from repro.core.coverage import (
    coverage_probability,
    expected_coverage_surface,
    expected_coverage_surfaces,
)
from repro.core.queueing import congested_latency
from repro.core.tsp import expected_hamiltonian_path
from repro.fabric.params import FabricSpec
from repro.fabric.tqa import TQA
from repro.qodg.critical_path import critical_path
from repro.qodg.graph import build_qodg
from repro.qodg.iig import build_iig


# ---------------------------------------------------------------------------
# Coverage model invariants (Eqs. 3-5)
# ---------------------------------------------------------------------------


@given(
    width=st.integers(2, 15),
    height=st.integers(2, 15),
    num_zones=st.integers(1, 25),
    area=st.floats(1.0, 30.0),
)
@settings(max_examples=60, deadline=None)
def test_eq3_coverage_surfaces_sum_to_fabric_area(width, height, num_zones, area):
    surfaces = expected_coverage_surfaces(
        num_zones, width, height, area, max_terms=None
    )
    s0 = expected_coverage_surface(0, num_zones, width, height, area)
    assert math.isclose(s0 + sum(surfaces), width * height, rel_tol=1e-7)


@given(
    width=st.integers(1, 20),
    height=st.integers(1, 20),
    area=st.floats(1.0, 50.0),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_coverage_probability_is_a_probability(width, height, area, data):
    x = data.draw(st.integers(1, width))
    y = data.draw(st.integers(1, height))
    p = coverage_probability(x, y, width, height, area)
    assert 0.0 <= p <= 1.0


@given(
    width=st.integers(3, 12),
    height=st.integers(3, 12),
    area=st.floats(1.0, 9.0),
)
@settings(max_examples=40, deadline=None)
def test_coverage_peaks_at_fabric_center(width, height, area):
    center = coverage_probability(
        (width + 1) // 2, (height + 1) // 2, width, height, area
    )
    corner = coverage_probability(1, 1, width, height, area)
    assert center >= corner


# ---------------------------------------------------------------------------
# Queueing model invariants (Eq. 8)
# ---------------------------------------------------------------------------


@given(
    d_uncong=st.floats(0.1, 1e5),
    capacity=st.integers(1, 20),
    overlap=st.integers(0, 200),
)
@settings(max_examples=100, deadline=None)
def test_congested_latency_never_below_uncongested(d_uncong, capacity, overlap):
    assert congested_latency(overlap, d_uncong, capacity) >= d_uncong * (
        1.0 - 1e-12
    )


@given(
    d_uncong=st.floats(0.1, 1e4),
    capacity=st.integers(1, 10),
)
@settings(max_examples=50, deadline=None)
def test_congested_latency_monotone_in_overlap(d_uncong, capacity):
    values = [
        congested_latency(q, d_uncong, capacity) for q in range(0, 40)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# TSP model invariants (Eq. 15)
# ---------------------------------------------------------------------------


@given(
    degree=st.integers(2, 500),
    area=st.floats(1.0, 1e4),
)
@settings(max_examples=100, deadline=None)
def test_hamiltonian_path_positive_and_scales_with_side(degree, area):
    base = expected_hamiltonian_path(degree, area)
    scaled = expected_hamiltonian_path(degree, 4.0 * area)
    assert base > 0
    assert math.isclose(scaled, 2.0 * base, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# QODG / critical path invariants on random circuits
# ---------------------------------------------------------------------------


@given(
    num_qubits=st.integers(3, 8),
    gate_count=st.integers(0, 60),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_qodg_is_acyclic_and_consistent(num_qubits, gate_count, seed):
    circuit = random_reversible(num_qubits, gate_count, seed)
    qodg = build_qodg(circuit)
    # Predecessors always come earlier in program order (acyclicity).
    for node in qodg.operation_nodes():
        for pred in qodg.predecessors(node):
            assert pred == qodg.start or pred < node
    # Edge sets are mutually consistent.
    for node in range(qodg.num_nodes):
        for succ in qodg.successors(node):
            assert node in qodg.predecessors(succ)


@given(
    num_qubits=st.integers(3, 8),
    gate_count=st.integers(1, 60),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_critical_path_bounded_by_total_and_max(num_qubits, gate_count, seed):
    circuit = random_reversible(num_qubits, gate_count, seed)
    qodg = build_qodg(circuit)
    result = critical_path(qodg, lambda g: 1.0)
    # The longest path is at least the deepest single-qubit chain and at
    # most the total gate count.
    assert 1.0 <= result.length <= gate_count
    assert len(result.node_ids) == int(result.length)


@given(
    num_qubits=st.integers(3, 7),
    gate_count=st.integers(1, 40),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_ft_synthesis_preserves_classical_function(num_qubits, gate_count, seed):
    # NCT circuits survive the Toffoli-lowering boundary: compare the
    # original against the pre-Toffoli stages (the FT stage introduces
    # H/T gates with no classical semantics, so compare up to there).
    from repro.circuits.decompose import (
        eliminate_fredkin,
        eliminate_swap,
        expand_multi_controlled,
    )

    circuit = random_reversible(num_qubits, gate_count, seed)
    lowered = eliminate_fredkin(
        eliminate_swap(expand_multi_controlled(circuit))
    )
    rng_bits = [(seed >> i) & 1 for i in range(num_qubits)]
    expected = simulate_basis(circuit, rng_bits)
    padded = rng_bits + [0] * (lowered.num_qubits - num_qubits)
    actual = simulate_basis(lowered, padded)
    assert actual[:num_qubits] == expected


@given(
    num_qubits=st.integers(3, 7),
    gate_count=st.integers(0, 40),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_iig_weight_counts_two_qubit_gates(num_qubits, gate_count, seed):
    circuit = random_reversible(num_qubits, gate_count, seed)
    iig = build_iig(circuit)
    two_qubit = sum(1 for g in circuit if g.arity == 2)
    assert iig.total_weight == two_qubit


# ---------------------------------------------------------------------------
# Geometry invariants
# ---------------------------------------------------------------------------


@given(
    width=st.integers(1, 30),
    height=st.integers(1, 30),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_route_xy_length_is_manhattan(width, height, data):
    tqa = TQA(FabricSpec(width, height))
    source = (
        data.draw(st.integers(0, width - 1)),
        data.draw(st.integers(0, height - 1)),
    )
    target = (
        data.draw(st.integers(0, width - 1)),
        data.draw(st.integers(0, height - 1)),
    )
    path = tqa.route_xy(source, target)
    assert len(path) - 1 == TQA.manhattan(source, target)
    for a, b in zip(path, path[1:]):
        assert TQA.manhattan(a, b) == 1
