"""Unit tests for placement strategies (repro.qspr.placement)."""

from __future__ import annotations

import pytest

from repro.circuits.generators import ham3
from repro.exceptions import MappingError
from repro.fabric.params import FabricSpec
from repro.fabric.tqa import TQA
from repro.qodg.iig import IIG, build_iig
from repro.qspr.placement import (
    PLACEMENT_STRATEGIES,
    iig_greedy_placement,
    make_placement,
    random_placement,
    row_major_placement,
)


@pytest.fixture
def tqa():
    return TQA(FabricSpec(6, 6))


class TestRowMajor:
    def test_fills_in_order(self, tqa):
        placement = row_major_placement(3, tqa)
        assert placement == [(0, 0), (1, 0), (2, 0)]

    def test_wraps_when_overflowing(self, tqa):
        placement = row_major_placement(tqa.area + 2, tqa)
        assert placement[tqa.area] == (0, 0)

    def test_all_positions_on_grid(self, tqa):
        for position in row_major_placement(30, tqa):
            assert tqa.contains(position)

    def test_negative_count_rejected(self, tqa):
        with pytest.raises(MappingError):
            row_major_placement(-1, tqa)


class TestRandom:
    def test_deterministic_for_seed(self, tqa):
        assert random_placement(10, tqa, seed=3) == random_placement(
            10, tqa, seed=3
        )

    def test_seeds_differ(self, tqa):
        assert random_placement(10, tqa, seed=1) != random_placement(
            10, tqa, seed=2
        )

    def test_distinct_until_saturation(self, tqa):
        placement = random_placement(tqa.area, tqa, seed=0)
        assert len(set(placement)) == tqa.area

    def test_overflow_allowed(self, tqa):
        placement = random_placement(tqa.area + 5, tqa, seed=0)
        assert len(placement) == tqa.area + 5
        for position in placement:
            assert tqa.contains(position)


class TestIIGGreedy:
    def test_all_on_grid_and_distinct(self, tqa):
        iig = build_iig(ham3())
        placement = iig_greedy_placement(iig, tqa)
        assert len(placement) == 3
        assert len(set(placement)) == 3
        for position in placement:
            assert tqa.contains(position)

    def test_interacting_qubits_placed_adjacent(self, tqa):
        # A heavy pair should end up next to each other.
        iig = IIG(2)
        iig.add_interaction(0, 1, weight=100)
        placement = iig_greedy_placement(iig, tqa)
        assert TQA.manhattan(placement[0], placement[1]) == 1

    def test_heavy_cluster_is_compact(self, tqa):
        # 5 mutually-interacting qubits vs an unrelated pair: the clique
        # spans a small neighbourhood.
        iig = IIG(7)
        for i in range(5):
            for j in range(i + 1, 5):
                iig.add_interaction(i, j, weight=10)
        iig.add_interaction(5, 6, weight=1)
        placement = iig_greedy_placement(iig, tqa)
        clique = placement[:5]
        spread = max(
            TQA.manhattan(a, b) for a in clique for b in clique
        )
        assert spread <= 4

    def test_isolated_qubits_still_placed(self, tqa):
        iig = IIG(4)  # no interactions at all
        placement = iig_greedy_placement(iig, tqa)
        assert len(set(placement)) == 4

    def test_overflow_beyond_fabric(self):
        small = TQA(FabricSpec(2, 2))
        iig = IIG(7)
        for i in range(6):
            iig.add_interaction(i, i + 1)
        placement = iig_greedy_placement(iig, small)
        assert len(placement) == 7
        for position in placement:
            assert small.contains(position)

    def test_deterministic(self, tqa):
        iig = build_iig(ham3())
        assert iig_greedy_placement(iig, tqa) == iig_greedy_placement(iig, tqa)


class TestMakePlacement:
    @pytest.mark.parametrize("strategy", PLACEMENT_STRATEGIES)
    def test_dispatch(self, strategy, tqa):
        iig = build_iig(ham3())
        placement = make_placement(strategy, iig, tqa, seed=1)
        assert len(placement) == 3

    def test_unknown_strategy_rejected(self, tqa):
        with pytest.raises(MappingError, match="unknown placement"):
            make_placement("simulated_annealing", IIG(2), tqa)
