"""Unit tests for the TSP/Hamiltonian path model (repro.core.tsp)."""

from __future__ import annotations

import math

import pytest

from repro.core.tsp import (
    UNIT_SQUARE_MEAN_DISTANCE,
    expected_hamiltonian_path,
    tsp_tour_estimate,
    tsp_tour_lower_bound,
    tsp_tour_upper_bound,
)
from repro.exceptions import EstimationError


class TestTourBounds:
    def test_eq13_lower_bound_formula(self):
        assert tsp_tour_lower_bound(16) == pytest.approx(0.708 * 4 + 0.551)

    def test_eq14_upper_bound_formula(self):
        assert tsp_tour_upper_bound(16) == pytest.approx(0.718 * 4 + 0.731)

    def test_estimate_is_the_midpoint(self):
        for n in (2, 10, 100):
            mid = (tsp_tour_lower_bound(n) + tsp_tour_upper_bound(n)) / 2
            assert tsp_tour_estimate(n) == pytest.approx(mid)

    def test_bounds_are_ordered(self):
        for n in (1, 5, 50, 500):
            assert (
                tsp_tour_lower_bound(n)
                < tsp_tour_estimate(n)
                < tsp_tour_upper_bound(n)
            )

    def test_monotone_in_point_count(self):
        values = [tsp_tour_estimate(n) for n in range(1, 50)]
        assert values == sorted(values)

    def test_invalid_point_count_rejected(self):
        with pytest.raises(EstimationError):
            tsp_tour_estimate(0)


class TestExpectedHamiltonianPath:
    def test_eq15_hand_computed(self):
        # M=4, B=9: sqrt(9) * (0.713*sqrt(5) + 0.641) * 3/4.
        expected = 3.0 * (0.713 * math.sqrt(5) + 0.641) * 0.75
        assert expected_hamiltonian_path(4, 9.0) == pytest.approx(expected)

    def test_degree_zero_is_zero(self):
        assert expected_hamiltonian_path(0, 5.0) == 0.0

    def test_degree_one_strict_is_zero(self):
        # Paper-faithful: the (M-1)/M factor vanishes.
        assert expected_hamiltonian_path(1, 4.0, strict=True) == 0.0

    def test_degree_one_corrected_uses_two_point_distance(self):
        value = expected_hamiltonian_path(1, 4.0, strict=False)
        assert value == pytest.approx(2.0 * UNIT_SQUARE_MEAN_DISTANCE)

    def test_strict_and_corrected_agree_for_higher_degrees(self):
        for degree in (2, 3, 10):
            assert expected_hamiltonian_path(
                degree, 7.0, strict=True
            ) == expected_hamiltonian_path(degree, 7.0, strict=False)

    def test_scales_with_zone_side(self):
        base = expected_hamiltonian_path(5, 1.0)
        assert expected_hamiltonian_path(5, 4.0) == pytest.approx(2.0 * base)

    def test_grows_with_degree(self):
        values = [expected_hamiltonian_path(m, 9.0) for m in range(2, 30)]
        assert values == sorted(values)

    def test_unit_square_mean_distance_constant(self):
        # Known closed form ~= 0.5214.
        assert UNIT_SQUARE_MEAN_DISTANCE == pytest.approx(0.52140543, abs=1e-6)

    @pytest.mark.parametrize("degree,area", [(-1, 1.0), (2, 0.0), (2, -3.0)])
    def test_invalid_inputs_rejected(self, degree, area):
        with pytest.raises(EstimationError):
            expected_hamiltonian_path(degree, area)
