"""Tests for the exception hierarchy and cross-module error behaviour."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CircuitError,
    DecompositionError,
    EstimationError,
    FabricError,
    GraphError,
    MappingError,
    ParseError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        CircuitError,
        DecompositionError,
        EstimationError,
        FabricError,
        GraphError,
        MappingError,
        ParseError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catching_base_class_catches_subsystem_errors(self):
        from repro.circuits.circuit import Circuit

        with pytest.raises(ReproError):
            Circuit(-1)

    def test_parse_error_line_number_formatting(self):
        error = ParseError("bad token", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_parse_error_without_line_number(self):
        error = ParseError("bad file")
        assert error.line_number is None
        assert str(error) == "bad file"


class TestErrorVocabularyPerSubsystem:
    def test_circuit_layer_raises_circuit_error(self):
        from repro.circuits.gates import cnot

        with pytest.raises(CircuitError):
            cnot(3, 3)

    def test_fabric_layer_raises_fabric_error(self):
        from repro.fabric.params import FabricSpec

        with pytest.raises(FabricError):
            FabricSpec(-1, 5)

    def test_graph_layer_raises_graph_error(self):
        from repro.qodg.iig import IIG

        with pytest.raises(GraphError):
            IIG(2).add_interaction(0, 0)

    def test_estimator_raises_estimation_error(self):
        from repro.core.queueing import congested_latency

        with pytest.raises(EstimationError):
            congested_latency(-1, 1.0, 1)

    def test_mapper_raises_mapping_error(self):
        from repro.qspr.placement import make_placement
        from repro.qodg.iig import IIG
        from repro.fabric.params import FabricSpec
        from repro.fabric.tqa import TQA

        with pytest.raises(MappingError):
            make_placement("nope", IIG(1), TQA(FabricSpec(2, 2)))
