"""Tests for the Monte-Carlo validation module (repro.core.validation).

These are the tests that *check the paper's math against simulation*: the
analytical E[S_q] must match empirical zone-placement statistics, and the
Eq. 13-14 TSP bracket must cover (approximately) the measured Hamiltonian
path lengths.
"""

from __future__ import annotations

import math

import pytest

from repro.core.coverage import (
    expected_coverage_surface,
    expected_coverage_surfaces,
)
from repro.core.tsp import (
    tsp_tour_estimate,
    tsp_tour_lower_bound,
    tsp_tour_upper_bound,
)
from repro.core.validation import (
    heuristic_hamiltonian_path_length,
    simulate_coverage_surfaces,
    simulate_hamiltonian_path,
)
from repro.exceptions import EstimationError


class TestCoverageSimulation:
    def test_total_surface_conserved(self):
        sim = simulate_coverage_surfaces(
            num_zones=6, width=10, height=10, area=9.0, trials=50, seed=1
        )
        assert sim.total == pytest.approx(100.0)

    def test_matches_analytical_surfaces(self):
        # Eq. 4 against simulation: each computed E[S_q] within a few
        # percent of the empirical average (law of large numbers).
        Q, a, b, area = 8, 12, 12, 9.0
        sim = simulate_coverage_surfaces(
            Q, a, b, area, trials=2000, max_overlap=Q, seed=7
        )
        analytical = expected_coverage_surfaces(Q, a, b, area, max_terms=None)
        s0 = expected_coverage_surface(0, Q, a, b, area)
        assert sim.surfaces[0] == pytest.approx(s0, rel=0.05)
        for q in range(1, Q + 1):
            if analytical[q - 1] > 1.0:  # skip statistically tiny terms
                assert sim.surfaces[q] == pytest.approx(
                    analytical[q - 1], rel=0.10
                ), f"q={q}"

    def test_zone_covering_fabric_always_full_overlap(self):
        sim = simulate_coverage_surfaces(
            num_zones=3, width=4, height=4, area=16.0, trials=10, seed=0
        )
        # Every zone covers everything: all 16 ULBs have overlap 3.
        assert sim.surfaces[3] == pytest.approx(16.0)
        assert sum(sim.surfaces[:3]) == pytest.approx(0.0)

    def test_deterministic_for_seed(self):
        kwargs = dict(num_zones=5, width=8, height=8, area=4.0, trials=20)
        sim1 = simulate_coverage_surfaces(seed=3, **kwargs)
        sim2 = simulate_coverage_surfaces(seed=3, **kwargs)
        assert sim1.surfaces == sim2.surfaces

    def test_invalid_arguments(self):
        with pytest.raises(EstimationError):
            simulate_coverage_surfaces(0, 5, 5, 4.0)
        with pytest.raises(EstimationError):
            simulate_coverage_surfaces(2, 5, 5, 4.0, trials=0)


class TestHeuristicPath:
    def test_two_points_is_their_distance(self):
        points = [(0.0, 0.0), (3.0, 4.0)]
        assert heuristic_hamiltonian_path_length(points) == pytest.approx(5.0)

    def test_single_point_is_zero(self):
        assert heuristic_hamiltonian_path_length([(0.5, 0.5)]) == 0.0

    def test_collinear_points_found_optimal(self):
        # Optimal path through collinear points is the segment length.
        points = [(0.1 * i, 0.0) for i in (0, 3, 1, 4, 2)]
        assert heuristic_hamiltonian_path_length(points) == pytest.approx(0.4)

    def test_square_corners(self):
        # Optimal open path over a unit square's corners = 3 sides.
        points = [(0, 0), (1, 1), (0, 1), (1, 0)]
        assert heuristic_hamiltonian_path_length(points) == pytest.approx(3.0)

    def test_never_below_spanning_lower_bound(self):
        import random

        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for _ in range(12)]
        length = heuristic_hamiltonian_path_length(points)
        # Any Hamiltonian path is at least the max pairwise distance.
        max_dist = max(
            math.hypot(p[0] - q[0], p[1] - q[1])
            for p in points
            for q in points
        )
        assert length >= max_dist - 1e-12


class TestPathSimulationAgainstBounds:
    def test_empirical_mean_between_scaled_bounds(self):
        # Eq. 13-14 bracket the expected TSP *tour*; the path midpoint
        # estimate (Eq. 15's core) should land near the empirical path.
        # For N = 40 points the asymptotic bracket is reasonably tight.
        sim = simulate_hamiltonian_path(num_points=40, trials=30, seed=2)
        tour_estimate = tsp_tour_estimate(40)
        path_estimate = tour_estimate * (39 / 40)  # one edge fewer (~paper)
        # Heuristic paths are near-optimal; allow a 15% band around the
        # analytical midpoint.
        assert sim.mean_length == pytest.approx(path_estimate, rel=0.15)

    def test_bounds_order_against_simulation(self):
        sim = simulate_hamiltonian_path(num_points=60, trials=20, seed=3)
        lower = tsp_tour_lower_bound(60) * (59 / 60)
        upper = tsp_tour_upper_bound(60)
        # The empirical path must not exceed the tour upper bound wildly
        # nor sit far below the path-adjusted lower bound.
        assert sim.mean_length < upper * 1.10
        assert sim.mean_length > lower * 0.85

    def test_growth_with_point_count(self):
        small = simulate_hamiltonian_path(10, trials=15, seed=1)
        large = simulate_hamiltonian_path(40, trials=15, seed=1)
        assert large.mean_length > small.mean_length

    def test_deterministic(self):
        sim1 = simulate_hamiltonian_path(15, trials=5, seed=9)
        sim2 = simulate_hamiltonian_path(15, trials=5, seed=9)
        assert sim1.mean_length == sim2.mean_length
