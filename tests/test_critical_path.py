"""Unit tests for critical-path analysis (repro.qodg.critical_path)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GateKind, cnot, h, t, x
from repro.circuits.generators import cnot_ladder
from repro.exceptions import GraphError
from repro.qodg.critical_path import critical_path, delays_from_mapping
from repro.qodg.graph import build_qodg


def unit_delay(_gate):
    return 1.0


class TestClosedFormFixtures:
    def test_empty_circuit_has_zero_length(self):
        result = critical_path(build_qodg(Circuit(2)), unit_delay)
        assert result.length == 0.0
        assert result.node_ids == ()

    def test_serial_chain_length_equals_gate_count(self):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), x(0)])
        result = critical_path(build_qodg(circuit), unit_delay)
        assert result.length == 3.0
        assert result.node_ids == (0, 1, 2)

    def test_parallel_gates_do_not_add(self):
        circuit = Circuit(3)
        circuit.extend([h(0), h(1), h(2)])
        result = critical_path(build_qodg(circuit), unit_delay)
        assert result.length == 1.0
        assert len(result.node_ids) == 1

    def test_cnot_ladder_is_fully_serial(self):
        circuit = cnot_ladder(6)
        result = critical_path(build_qodg(circuit), unit_delay)
        assert result.length == 5.0
        assert result.cnot_count == 5

    def test_diamond_takes_longer_branch(self):
        # q0: h;  q1: h,t,x;  then cnot(0,1).  Longest path = 3 + 1.
        circuit = Circuit(2)
        circuit.extend([h(0), h(1), t(1), x(1), cnot(0, 1)])
        result = critical_path(build_qodg(circuit), unit_delay)
        assert result.length == 4.0
        assert result.node_ids == (1, 2, 3, 4)

    def test_weighted_delays_change_winner(self):
        # Same diamond, with every H weighing 10.
        circuit = Circuit(2)
        circuit.extend([h(0), h(1), t(1), x(1), cnot(0, 1)])

        def delay_by_kind(gate):
            return 10.0 if gate.kind is GateKind.H else 1.0

        result = critical_path(build_qodg(circuit), delay_by_kind)
        # q1 branch: 10 + 1 + 1 = 12; q0 branch: 10. Plus CNOT 1 -> 13.
        assert result.length == 13.0

    def test_counts_by_kind_on_path(self):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), t(0)])
        result = critical_path(build_qodg(circuit), unit_delay)
        assert result.counts_by_kind == {GateKind.H: 1, GateKind.T: 2}

    def test_path_length_equals_sum_of_delays_on_path(self, adder_ft):
        qodg = build_qodg(adder_ft)

        def delay(gate):
            return 2.0 if gate.kind is GateKind.CNOT else 1.0

        result = critical_path(qodg, delay)
        recomputed = sum(delay(qodg.gate(n)) for n in result.node_ids)
        assert result.length == pytest.approx(recomputed)

    def test_path_is_a_dependency_chain(self, adder_ft):
        qodg = build_qodg(adder_ft)
        result = critical_path(qodg, unit_delay)
        for earlier, later in zip(result.node_ids, result.node_ids[1:]):
            assert earlier in qodg.predecessors(later)


class TestDelaysFromMapping:
    def test_maps_kinds(self):
        delay = delays_from_mapping({GateKind.H: 5.0, GateKind.CNOT: 2.0})
        assert delay(h(0)) == 5.0
        assert delay(cnot(0, 1)) == 2.0

    def test_missing_kind_raises(self):
        delay = delays_from_mapping({GateKind.H: 5.0})
        with pytest.raises(GraphError, match="no delay registered"):
            delay(t(0))


class TestValidation:
    def test_negative_delay_rejected(self):
        circuit = Circuit(1)
        circuit.append(h(0))
        with pytest.raises(GraphError, match="negative delay"):
            critical_path(build_qodg(circuit), lambda g: -1.0)

    def test_zero_delays_allowed(self):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0)])
        result = critical_path(build_qodg(circuit), lambda g: 0.0)
        assert result.length == 0.0
