"""Unit tests for the QSPR scheduler (repro.qspr.scheduling)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, h, t, toffoli, x
from repro.exceptions import MappingError
from repro.fabric.params import FabricSpec, GateDelays, PhysicalParams
from repro.qspr.scheduling import schedule_circuit


@pytest.fixture
def params():
    ones = GateDelays(
        h=10.0, t=10.0, tdg=10.0, x=10.0, y=10.0, z=10.0, s=10.0, sdg=10.0,
        cnot=40.0,
    )
    return PhysicalParams(
        delays=ones, fabric=FabricSpec(8, 8), t_move=100.0
    )


class TestSingleOperations:
    def test_one_qubit_op_in_place(self, params):
        circuit = Circuit(1)
        circuit.append(h(0))
        result = schedule_circuit(circuit, [(0, 0)], params)
        assert result.latency == pytest.approx(10.0)
        assert result.stats.one_qubit_count == 1
        assert result.stats.total_moves == 0

    def test_colocated_cnot_needs_no_routing(self, params):
        circuit = Circuit(2)
        circuit.append(cnot(0, 1))
        result = schedule_circuit(circuit, [(3, 3), (3, 3)], params)
        assert result.latency == pytest.approx(40.0)
        assert result.stats.total_hops == 0

    def test_distant_cnot_routes_both_to_midpoint(self, params):
        circuit = Circuit(2)
        circuit.append(cnot(0, 1))
        result = schedule_circuit(circuit, [(0, 0), (4, 0)], params)
        # Midpoint (2,0): both travel 2 hops = 200, then 40 to execute.
        assert result.latency == pytest.approx(240.0)
        assert result.final_locations == ((2, 0), (2, 0))

    def test_asymmetric_routes_wait_for_the_slower(self, params):
        circuit = Circuit(2)
        circuit.append(cnot(0, 1))
        result = schedule_circuit(circuit, [(0, 0), (3, 0)], params)
        # Midpoint of a 3-hop route: one qubit 1 hop, the other 2.
        assert result.latency == pytest.approx(2 * 100.0 + 40.0)


class TestDependencies:
    def test_serial_chain_accumulates(self, params):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), x(0)])
        result = schedule_circuit(circuit, [(0, 0)], params)
        assert result.latency == pytest.approx(30.0)
        assert list(result.finish_times) == [
            pytest.approx(10.0),
            pytest.approx(20.0),
            pytest.approx(30.0),
        ]

    def test_finish_times_respect_dependencies(self, params):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1), t(1)])
        result = schedule_circuit(circuit, [(0, 0), (0, 1)], params)
        times = result.finish_times
        assert times[0] < times[1] < times[2]

    def test_independent_qubits_run_in_parallel(self, params):
        circuit = Circuit(2)
        circuit.extend([h(0), h(1)])
        result = schedule_circuit(circuit, [(0, 0), (5, 5)], params)
        assert result.latency == pytest.approx(10.0)

    def test_colocated_qubits_serialize_on_the_ulb(self, params):
        # Same ULB, independent ops: execution is exclusive per ULB, so
        # either they serialize or one hops away (plus T_move).
        circuit = Circuit(2)
        circuit.extend([h(0), h(1)])
        result = schedule_circuit(circuit, [(2, 2), (2, 2)], params)
        assert result.latency > 10.0

    def test_relocation_prefers_fast_neighbor(self, params):
        # Busy home ULB + free neighbours: the second op should relocate
        # (hop 100) rather than wait for a long-running op... with h=10 the
        # wait (10) beats the hop (100), so it stays. Make the blocker slow.
        slow = GateDelays(
            h=500.0, t=10.0, tdg=10.0, x=10.0, y=10.0, z=10.0, s=10.0,
            sdg=10.0, cnot=40.0,
        )
        slow_params = PhysicalParams(
            delays=slow, fabric=FabricSpec(8, 8), t_move=100.0
        )
        circuit = Circuit(2)
        circuit.extend([h(0), x(1)])
        result = schedule_circuit(circuit, [(2, 2), (2, 2)], slow_params)
        # x(1) hops (100) then runs (10) instead of waiting 500.
        assert result.finish_times[1] == pytest.approx(110.0)
        assert result.stats.relocations == 1


class TestAlapOrder:
    def test_alap_respects_dependencies(self, params):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1), t(1), x(0)])
        result = schedule_circuit(
            circuit, [(0, 0), (3, 0)], params, order="alap"
        )
        times = result.finish_times
        assert times[0] < times[1] < times[2]  # chain on qubits 0/1
        assert times[3] > times[1]  # x(0) depends on the CNOT

    def test_alap_matches_program_on_serial_chain(self, params):
        circuit = Circuit(1)
        circuit.extend([h(0), t(0), x(0)])
        program = schedule_circuit(circuit, [(0, 0)], params)
        alap = schedule_circuit(circuit, [(0, 0)], params, order="alap")
        assert alap.finish_times == program.finish_times

    def test_alap_prioritizes_the_critical_branch(self):
        # Two ops compete for one ULB: a critical chain head vs a slack op.
        # ALAP order runs the chain head first; program order is written
        # to run the slack op first, delaying the chain.
        slow = GateDelays(
            h=100.0, t=100.0, tdg=100.0, x=100.0, y=100.0, z=100.0,
            s=100.0, sdg=100.0, cnot=100.0,
        )
        params = PhysicalParams(
            delays=slow, fabric=FabricSpec(4, 4), t_move=1000.0
        )
        circuit = Circuit(2)
        # Program order: the slack op first.
        circuit.extend([x(1), h(0), t(0), x(0)])
        placement = [(0, 0), (0, 0)]  # same ULB: execution contention
        program = schedule_circuit(circuit, placement, params)
        alap = schedule_circuit(circuit, placement, params, order="alap")
        assert alap.latency <= program.latency

    def test_alap_valid_on_benchmark(self, params, adder_ft):
        from repro.qspr.placement import row_major_placement
        from repro.fabric.tqa import TQA

        placement = row_major_placement(adder_ft.num_qubits, TQA(params.fabric))
        result = schedule_circuit(adder_ft, placement, params, order="alap")
        assert result.latency > 0
        # Dependencies hold: every op finishes after all same-qubit
        # predecessors.
        last_finish = [0.0] * adder_ft.num_qubits
        ordered = sorted(
            range(len(adder_ft)), key=lambda i: result.finish_times[i]
        )
        for index in ordered:
            gate = adder_ft[index]
            finish = result.finish_times[index]
            for qubit in gate.qubits:
                assert finish >= last_finish[qubit]
                last_finish[qubit] = max(last_finish[qubit], finish)

    def test_unknown_order_rejected(self, params):
        circuit = Circuit(1)
        circuit.append(h(0))
        with pytest.raises(MappingError, match="unknown scheduling order"):
            schedule_circuit(circuit, [(0, 0)], params, order="asap")

    def test_trace_in_program_order_despite_alap(self, params):
        circuit = Circuit(2)
        circuit.extend([x(1), h(0), cnot(0, 1)])
        result = schedule_circuit(
            circuit, [(0, 0), (1, 0)], params, order="alap",
            record_trace=True,
        )
        indices = [e.index for e in result.trace]
        assert indices == sorted(indices)


class TestValidation:
    def test_placement_size_mismatch(self, params):
        with pytest.raises(MappingError, match="placement covers"):
            schedule_circuit(Circuit(2), [(0, 0)], params)

    def test_off_grid_placement(self, params):
        circuit = Circuit(1)
        circuit.append(h(0))
        with pytest.raises(Exception):
            schedule_circuit(circuit, [(99, 99)], params)

    def test_non_ft_gate_rejected(self, params):
        circuit = Circuit(3)
        circuit.append(toffoli(0, 1, 2))
        with pytest.raises(MappingError, match="not executable"):
            schedule_circuit(circuit, [(0, 0), (0, 1), (0, 2)], params)

    def test_empty_circuit(self, params):
        result = schedule_circuit(Circuit(0), [], params)
        assert result.latency == 0.0

    def test_stats_counts(self, params):
        circuit = Circuit(2)
        circuit.extend([h(0), cnot(0, 1), t(1)])
        result = schedule_circuit(circuit, [(0, 0), (4, 0)], params)
        assert result.stats.cnot_count == 1
        assert result.stats.one_qubit_count == 2
