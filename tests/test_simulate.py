"""Unit tests for the reference simulators (repro.circuits.simulate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    GateKind,
    cnot,
    fredkin,
    h,
    mct,
    s,
    sdg,
    swap,
    t,
    tdg,
    toffoli,
    x,
    y,
    z,
)
from repro.circuits.simulate import (
    CLASSICAL_KINDS,
    apply_gate_to_bits,
    circuit_unitary,
    gate_unitary,
    simulate_basis,
    simulate_int,
)
from repro.exceptions import CircuitError


class TestApplyGateToBits:
    def test_x_flips_target(self):
        bits = [0, 0]
        apply_gate_to_bits(x(1), bits)
        assert bits == [0, 1]

    def test_cnot_respects_control(self):
        bits = [0, 0]
        apply_gate_to_bits(cnot(0, 1), bits)
        assert bits == [0, 0]
        bits = [1, 0]
        apply_gate_to_bits(cnot(0, 1), bits)
        assert bits == [1, 1]

    def test_toffoli_needs_both_controls(self):
        for a, b, expected in [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 1)]:
            bits = [a, b, 0]
            apply_gate_to_bits(toffoli(0, 1, 2), bits)
            assert bits[2] == expected

    def test_fredkin_swaps_when_control_set(self):
        bits = [1, 1, 0]
        apply_gate_to_bits(fredkin(0, 1, 2), bits)
        assert bits == [1, 0, 1]

    def test_fredkin_identity_when_control_clear(self):
        bits = [0, 1, 0]
        apply_gate_to_bits(fredkin(0, 1, 2), bits)
        assert bits == [0, 1, 0]

    def test_swap_unconditional(self):
        bits = [1, 0]
        apply_gate_to_bits(swap(0, 1), bits)
        assert bits == [0, 1]

    def test_mct_fires_only_on_all_controls(self):
        gate = mct((0, 1, 2), 3)
        bits = [1, 1, 0, 0]
        apply_gate_to_bits(gate, bits)
        assert bits[3] == 0
        bits = [1, 1, 1, 0]
        apply_gate_to_bits(gate, bits)
        assert bits[3] == 1

    @pytest.mark.parametrize("gate", [h(0), t(0), s(0)])
    def test_quantum_gate_rejected(self, gate):
        with pytest.raises(CircuitError, match="no classical"):
            apply_gate_to_bits(gate, [0])


class TestSimulateBasis:
    def test_wrong_input_length_rejected(self):
        with pytest.raises(CircuitError, match="expected 2"):
            simulate_basis(Circuit(2), [0])

    def test_reversibility_forward_then_reverse(self):
        circuit = Circuit(3)
        circuit.extend([x(0), cnot(0, 1), toffoli(0, 1, 2), fredkin(2, 0, 1)])
        inverse = circuit.reversed()
        for value in range(8):
            bits = [(value >> i) & 1 for i in range(3)]
            out = simulate_basis(inverse, simulate_basis(circuit, bits))
            assert out == bits

    def test_simulate_int_roundtrip(self):
        circuit = Circuit(4)
        circuit.append(x(2))
        assert simulate_int(circuit, 0b0001) == 0b0101

    def test_simulate_int_with_bit_order(self):
        circuit = Circuit(2)
        circuit.append(x(0))
        # bit 0 of the value lives on qubit 1
        assert simulate_int(circuit, 0b00, bit_order=[1, 0]) == 0b10


class TestGateUnitary:
    @pytest.mark.parametrize("gate", [x(0), y(0), z(0), h(0), s(0), sdg(0), t(0), tdg(0)])
    def test_one_qubit_unitaries_are_unitary(self, gate):
        unitary = gate_unitary(gate, 1)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(2), atol=1e-12)

    def test_h_squared_is_identity(self):
        unitary = gate_unitary(h(0), 1)
        assert np.allclose(unitary @ unitary, np.eye(2), atol=1e-12)

    def test_t_fourth_power_is_z(self):
        t_matrix = gate_unitary(t(0), 1)
        z_matrix = gate_unitary(z(0), 1)
        assert np.allclose(np.linalg.matrix_power(t_matrix, 4), z_matrix, atol=1e-12)

    def test_s_is_t_squared(self):
        assert np.allclose(
            gate_unitary(s(0), 1), gate_unitary(t(0), 1) @ gate_unitary(t(0), 1),
            atol=1e-12,
        )

    def test_sdg_inverts_s(self):
        product = gate_unitary(sdg(0), 1) @ gate_unitary(s(0), 1)
        assert np.allclose(product, np.eye(2), atol=1e-12)

    def test_cnot_permutation(self):
        unitary = gate_unitary(cnot(0, 1), 2)
        # |01> (qubit0=1) -> |11>; states indexed little-endian.
        state = np.zeros(4)
        state[1] = 1.0
        assert np.allclose(unitary @ state, np.eye(4)[3])

    def test_embedded_target_qubit(self):
        # X on qubit 1 of 3: |000> -> |010> (index 2).
        unitary = gate_unitary(x(1), 3)
        assert unitary[2, 0] == 1.0

    def test_too_many_qubits_rejected(self):
        with pytest.raises(CircuitError, match="limited"):
            gate_unitary(x(0), 15)


class TestCircuitUnitary:
    def test_empty_circuit_is_identity(self):
        assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))

    def test_composition_order(self):
        # X then H on one qubit: U = H @ X.
        circuit = Circuit(1)
        circuit.extend([x(0), h(0)])
        expected = gate_unitary(h(0), 1) @ gate_unitary(x(0), 1)
        assert np.allclose(circuit_unitary(circuit), expected, atol=1e-12)

    def test_classical_kinds_constant(self):
        assert GateKind.TOFFOLI in CLASSICAL_KINDS
        assert GateKind.H not in CLASSICAL_KINDS
