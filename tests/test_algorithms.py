"""Functional tests for algorithm-level circuits (repro.circuits.algorithms)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.circuits.algorithms import bernstein_vazirani, cuccaro_adder, grover
from repro.circuits.decompose import synthesize_ft
from repro.circuits.simulate import circuit_unitary, simulate_basis
from repro.exceptions import CircuitError


class TestCuccaroAdder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_adds_with_carry_out_exhaustively(self, n):
        circuit = cuccaro_adder(n)
        for a in range(1 << n):
            for b in range(1 << n):
                bits = [0] * (2 * n + 2)
                for i in range(n):
                    bits[1 + 2 * i] = (b >> i) & 1
                    bits[2 + 2 * i] = (a >> i) & 1
                out = simulate_basis(circuit, bits)
                total = a + b
                got_sum = sum(out[1 + 2 * i] << i for i in range(n))
                assert got_sum == total % (1 << n)
                assert out[-1] == (total >> n) & 1  # carry out
                # a register and cin restored.
                assert out[0] == 0
                for i in range(n):
                    assert out[2 + 2 * i] == (a >> i) & 1

    def test_carry_in_participates(self):
        n = 3
        circuit = cuccaro_adder(n)
        bits = [1] + [0] * (2 * n + 1)  # cin = 1, a = b = 0
        out = simulate_basis(circuit, bits)
        got_sum = sum(out[1 + 2 * i] << i for i in range(n))
        assert got_sum == 1
        assert out[0] == 1  # cin preserved

    def test_qubit_count_is_2n_plus_2(self):
        assert cuccaro_adder(8).num_qubits == 18

    def test_fewer_qubits_than_vbe_coding(self):
        from repro.circuits.generators import ripple_adder

        assert cuccaro_adder(8).num_qubits < ripple_adder(8).num_qubits

    def test_invalid_n(self):
        with pytest.raises(CircuitError):
            cuccaro_adder(0)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0b000, 0b101, 0b111, 0b010])
    def test_recovers_secret_with_certainty(self, secret):
        n = 3
        circuit = bernstein_vazirani(secret, n)
        unitary = circuit_unitary(circuit)
        # Input |0...0>|0> (the circuit prepares the |-> ancilla itself).
        state = unitary[:, 0]
        probabilities = np.abs(state) ** 2
        # Marginal over the query register: all mass on |secret>.
        mass = 0.0
        for index, p in enumerate(probabilities):
            if index & ((1 << n) - 1) == secret:
                mass += p
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_already_fault_tolerant(self):
        assert bernstein_vazirani(0b11, 2).is_ft()

    def test_oracle_size_matches_secret_weight(self):
        from repro.circuits.gates import GateKind

        circuit = bernstein_vazirani(0b1011, 4)
        assert circuit.count_kind(GateKind.CNOT) == 3

    def test_secret_too_large_rejected(self):
        with pytest.raises(CircuitError, match="does not fit"):
            bernstein_vazirani(8, 3)


class TestGrover:
    @pytest.mark.parametrize("n,marked", [(2, 0b01), (2, 0b11), (3, 0b101)])
    def test_amplifies_marked_state(self, n, marked):
        circuit = grover(n, marked)
        unitary = circuit_unitary(circuit)
        probabilities = np.abs(unitary[:, 0]) ** 2
        # The marked state dominates (n=2 single iteration is exact).
        assert probabilities[marked] == max(probabilities)
        if n == 2:
            assert probabilities[marked] == pytest.approx(1.0, abs=1e-9)

    def test_iteration_count_default(self):
        import math

        expected = max(1, round(math.pi / 4 * math.sqrt(8)))
        explicit = grover(3, 0, iterations=expected)
        default = grover(3, 0)
        assert len(default) == len(explicit)

    def test_ft_synthesis_and_estimation_pipeline(self):
        from repro.core.estimator import estimate_latency

        ft = synthesize_ft(grover(4, 0b1010))
        assert ft.is_ft()
        estimate = estimate_latency(ft)
        assert estimate.latency > 0

    def test_marked_too_large_rejected(self):
        with pytest.raises(CircuitError):
            grover(2, 4)

    def test_unitary_is_unitary(self):
        unitary = circuit_unitary(grover(3, 2, iterations=1))
        assert np.allclose(
            unitary @ unitary.conj().T, np.eye(8), atol=1e-9
        )
