"""Unit tests for the analysis toolkit (errors, scaling, report, calibration)."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import calibrate_qubit_speed
from repro.analysis.errors import (
    AccuracyRow,
    absolute_error_percent,
    summarize,
)
from repro.analysis.report import format_scientific, format_table
from repro.analysis.scaling import extrapolate, fit_power_law
from repro.circuits.circuit import Circuit
from repro.circuits.gates import h
from repro.circuits.generators import ham3
from repro.core.estimator import LEQAEstimator
from repro.exceptions import EstimationError, ReproError
from repro.fabric.params import FabricSpec, PhysicalParams


class TestErrors:
    def test_absolute_error_percent(self):
        assert absolute_error_percent(2.0, 2.1) == pytest.approx(5.0)
        assert absolute_error_percent(2.0, 1.9) == pytest.approx(5.0)

    def test_zero_actual_rejected(self):
        with pytest.raises(EstimationError):
            absolute_error_percent(0.0, 1.0)

    def test_row_error(self):
        row = AccuracyRow("bench", actual_seconds=1.617, estimated_seconds=1.667)
        assert row.error_percent == pytest.approx(3.0921, abs=1e-3)

    def test_summarize_matches_paper_statistics_shape(self):
        rows = [
            AccuracyRow("a", 1.0, 1.02),
            AccuracyRow("b", 2.0, 1.9),
            AccuracyRow("c", 4.0, 4.0),
        ]
        summary = summarize(rows)
        assert summary.average_error_percent == pytest.approx((2 + 5 + 0) / 3)
        assert summary.max_error_percent == pytest.approx(5.0)
        assert len(summary.rows) == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(EstimationError):
            summarize([])


class TestScaling:
    def test_recovers_exact_power_law(self):
        sizes = [100, 1000, 10000, 100000]
        runtimes = [2.0 * s**1.5 for s in sizes]
        fit = fit_power_law(sizes, runtimes)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_and_extrapolate(self):
        fit = fit_power_law([10, 100, 1000], [1.0, 10.0, 100.0])
        assert fit.exponent == pytest.approx(1.0)
        assert extrapolate(fit, 10**6) == pytest.approx(10**5, rel=1e-6)

    def test_noisy_data_r_squared_below_one(self):
        sizes = [10, 100, 1000, 10000]
        runtimes = [1.2, 9.0, 110.0, 900.0]
        fit = fit_power_law(sizes, runtimes)
        assert 0.9 < fit.r_squared < 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            fit_power_law([1, 2], [1.0])

    def test_single_point_rejected(self):
        with pytest.raises(EstimationError):
            fit_power_law([10], [1.0])

    def test_non_positive_data_rejected(self):
        with pytest.raises(EstimationError):
            fit_power_law([1, 0], [1.0, 2.0])

    def test_predict_invalid_size_rejected(self):
        fit = fit_power_law([10, 100], [1.0, 10.0])
        with pytest.raises(EstimationError):
            fit.predict(0)


class TestReport:
    def test_format_scientific_matches_paper_style(self):
        assert format_scientific(1.617) == "1.617E+00"
        assert format_scientific(0.0446, 3) == "4.460E-02"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("---")
        assert len(lines) == 5

    def test_column_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["one"], [["a", "b"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestCalibration:
    def test_recovers_known_speed(self):
        # Estimate at a known v, then calibrate against that latency: the
        # recovered speed must reproduce the same estimate.
        params = PhysicalParams(qubit_speed=0.004, fabric=FabricSpec(12, 12))
        circuit = ham3()
        target = LEQAEstimator(params=params).estimate(circuit).latency
        recovered = calibrate_qubit_speed(circuit, params, target)
        recalibrated = PhysicalParams(
            qubit_speed=recovered, fabric=FabricSpec(12, 12)
        )
        replay = LEQAEstimator(params=recalibrated).estimate(circuit).latency
        assert replay == pytest.approx(target, rel=1e-4)

    def test_larger_target_gives_slower_speed(self):
        params = PhysicalParams(fabric=FabricSpec(12, 12))
        circuit = ham3()
        base = LEQAEstimator(params=params).estimate(circuit).latency
        v1 = calibrate_qubit_speed(circuit, params, base * 1.5)
        v2 = calibrate_qubit_speed(circuit, params, base * 3.0)
        assert v2 < v1

    def test_unreachable_target_rejected(self):
        params = PhysicalParams(fabric=FabricSpec(12, 12))
        with pytest.raises(EstimationError, match="routing-free"):
            calibrate_qubit_speed(ham3(), params, 1.0)  # 1 µs: impossible

    def test_cnot_free_circuit_rejected(self):
        circuit = Circuit(1)
        circuit.append(h(0))
        params = PhysicalParams(fabric=FabricSpec(12, 12))
        with pytest.raises(EstimationError, match="no CNOT"):
            calibrate_qubit_speed(circuit, params, 10000.0)

    def test_non_positive_target_rejected(self):
        params = PhysicalParams(fabric=FabricSpec(12, 12))
        with pytest.raises(EstimationError):
            calibrate_qubit_speed(ham3(), params, 0.0)
