#!/usr/bin/env python3
"""Quickstart: estimate a quantum algorithm's latency in milliseconds of
CPU time instead of running a full mapper.

Builds a Table-3 benchmark, runs LEQA (the analytical estimator) and the
QSPR-class detailed mapper side by side, and prints the accuracy row —
a one-benchmark slice of the paper's Table 2.

Run:  python examples/quickstart.py
"""

from repro import (
    DEFAULT_PARAMS,
    LEQAEstimator,
    QSPRMapper,
    absolute_error_percent,
    build_ft,
)


def main() -> None:
    # 1. A fault-tolerant netlist: the GF(2^16) multiplier from the
    #    paper's benchmark list, synthesized down to {CNOT, H, T, ...}.
    circuit = build_ft("gf2^16mult")
    stats = circuit.stats()
    print(f"benchmark        : {circuit.name}")
    print(f"logical qubits   : {stats.qubit_count}")
    print(f"FT operations    : {stats.gate_count}")
    print(f"CNOTs            : {stats.two_qubit_count}")
    print()

    # 2. LEQA: presence zones + coverage statistics + M/M/1 queueing,
    #    then one critical-path pass.  Milliseconds of work.
    estimate = LEQAEstimator(params=DEFAULT_PARAMS).estimate(circuit)
    print(f"LEQA estimate    : {estimate.latency_seconds:.3f} s "
          f"(computed in {estimate.elapsed_seconds:.3f} s)")
    print(f"  avg zone area B: {estimate.average_zone_area:.2f} ULBs")
    print(f"  d_uncong       : {estimate.d_uncong:.1f} us")
    print(f"  L_CNOT^avg     : {estimate.l_avg_cnot:.1f} us")
    print()

    # 3. The expensive way: detailed scheduling, placement and routing of
    #    every qubit movement on the 60x60 tiled architecture.
    actual = QSPRMapper(params=DEFAULT_PARAMS).map(circuit)
    print(f"mapper actual    : {actual.latency_seconds:.3f} s "
          f"(computed in {actual.elapsed_seconds:.3f} s)")
    moves = actual.schedule.stats
    print(f"  qubit moves    : {moves.total_moves}")
    print(f"  channel hops   : {moves.total_hops}")
    print()

    # 4. The paper's Table-2 comparison for this benchmark.
    error = absolute_error_percent(
        actual.latency_seconds, estimate.latency_seconds
    )
    speedup = actual.elapsed_seconds / max(estimate.elapsed_seconds, 1e-9)
    print(f"absolute error   : {error:.2f} %")
    print(f"estimator speedup: {speedup:.1f}x")


if __name__ == "__main__":
    main()
