#!/usr/bin/env python3
"""Fabric sizing: find the fabric that minimizes estimated latency.

Section 3.3: the fabric size "can be changed to find the optimal size for
the fabric which results in the minimum delay".  Small fabrics force many
presence zones to overlap (channel congestion, the M/M/1 regime of
Eq. 8); huge fabrics waste area once congestion has vanished.  LEQA makes
the sweep instant.

The sweep runs through the execution engine (:mod:`repro.engine`): one
``BatchRunner`` grid whose staged artifact cache synthesizes the FT
netlist and builds the IIG exactly once for all fabric sizes — the cache
statistics printed at the end prove it.  The script then reports the
smallest fabric within 0.5 % of the best latency — a sensible "knee"
recommendation a fabric architect would act on.

Run:  python examples/fabric_sizing.py
"""

from repro.analysis import format_table
from repro.engine import BatchRunner, sweep_fabric_sizes

SIZES = [8, 10, 14, 20, 28, 40, 60, 90]
BENCH = "hwb20ps"


def main() -> None:
    runner = BatchRunner(workers=1)
    points = sweep_fabric_sizes(BENCH, SIZES, runner=runner)
    failed = [p for p in points if not p.ok]
    if failed:
        for point in failed:
            print(f"{point.job.tag}: {point.error}")
        raise SystemExit(1)
    first = points[0].result.detail
    print(
        f"benchmark {BENCH}: {first.qubit_count} qubits, "
        f"{first.op_count} FT ops\n"
    )
    best_latency = min(p.result.latency for p in points)
    rows = []
    for size, point in zip(SIZES, points):
        estimate = point.result.detail
        overhead = (estimate.latency / best_latency - 1.0) * 100
        rows.append(
            [
                f"{size} x {size}",
                size * size,
                f"{estimate.latency_seconds:.3f}",
                f"{estimate.l_avg_cnot:.1f}",
                f"+{overhead:.2f}%",
            ]
        )
    print(
        format_table(
            ["Fabric", "ULBs", "Est. latency (s)", "L_CNOT^avg (us)",
             "vs best"],
            rows,
            title="Fabric-size sweep",
        )
    )
    knee = next(
        size
        for size, point in zip(SIZES, points)
        if point.result.latency <= best_latency * 1.005
    )
    print(
        f"\nrecommended fabric: {knee} x {knee} "
        "(smallest within 0.5% of the best latency)"
    )
    stats = runner.cache.stats()
    print(
        f"engine cache: FT synthesis ran {stats.miss_count('ft')}x and the "
        f"IIG was built {stats.miss_count('iig')}x for {len(points)} sweep "
        "points"
    )


if __name__ == "__main__":
    main()
