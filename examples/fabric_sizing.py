#!/usr/bin/env python3
"""Fabric sizing: find the fabric that minimizes estimated latency.

Section 3.3: the fabric size "can be changed to find the optimal size for
the fabric which results in the minimum delay".  Small fabrics force many
presence zones to overlap (channel congestion, the M/M/1 regime of
Eq. 8); huge fabrics waste area once congestion has vanished.  LEQA makes
the sweep instant.

The script sweeps square fabrics for a congestion-prone benchmark and
prints the latency curve along with the congestion share, then reports
the smallest fabric within 0.5 % of the best latency — a sensible
"knee" recommendation a fabric architect would act on.

Run:  python examples/fabric_sizing.py
"""

from repro import DEFAULT_PARAMS, LEQAEstimator, build_ft
from repro.analysis import format_table

SIZES = [8, 10, 14, 20, 28, 40, 60, 90]
BENCH = "hwb20ps"


def main() -> None:
    circuit = build_ft(BENCH)
    print(
        f"benchmark {BENCH}: {circuit.num_qubits} qubits, "
        f"{len(circuit)} FT ops\n"
    )
    results = []
    for size in SIZES:
        params = DEFAULT_PARAMS.with_fabric(size, size)
        estimate = LEQAEstimator(params=params).estimate(circuit)
        results.append((size, estimate))
    best_latency = min(e.latency for _, e in results)
    rows = []
    for size, estimate in results:
        overhead = (estimate.latency / best_latency - 1.0) * 100
        rows.append(
            [
                f"{size} x {size}",
                size * size,
                f"{estimate.latency_seconds:.3f}",
                f"{estimate.l_avg_cnot:.1f}",
                f"+{overhead:.2f}%",
            ]
        )
    print(
        format_table(
            ["Fabric", "ULBs", "Est. latency (s)", "L_CNOT^avg (us)",
             "vs best"],
            rows,
            title="Fabric-size sweep",
        )
    )
    knee = next(
        size
        for size, estimate in results
        if estimate.latency <= best_latency * 1.005
    )
    print(
        f"\nrecommended fabric: {knee} x {knee} "
        "(smallest within 0.5% of the best latency)"
    )


if __name__ == "__main__":
    main()
