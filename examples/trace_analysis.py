#!/usr/bin/env python3
"""Inspecting a detailed mapping: traces, heatmaps and slack.

The paper observes that detailed mappers produce "the mapping solution
with the details of every qubit movement" — too much for latency
estimation, but exactly what an architect wants when a mapping looks
slow.  This walkthrough runs the mapper with tracing enabled and digs in:

1. per-ULB utilization and channel-traffic heatmaps,
2. the busiest execution sites and most-travelled qubits,
3. slack analysis showing how routing latencies reshape the critical
   path (the effect LEQA models by adding L^avg terms before the
   critical-path pass).

Run:  python examples/trace_analysis.py
"""

from repro import DEFAULT_PARAMS, QSPRMapper, build_ft
from repro.analysis import congestion_heatmap, utilization_heatmap
from repro.qodg import analyze_slack, build_qodg, critical_set_shift
from repro.qspr import busiest_ulbs, qubit_travel

BENCH = "gf2^16mult"


def main() -> None:
    params = DEFAULT_PARAMS.with_fabric(24, 24)  # small fabric: visible heat
    circuit = build_ft(BENCH)
    print(f"mapping {BENCH}: {circuit.num_qubits} qubits, {len(circuit)} ops")
    result = QSPRMapper(params=params, record_trace=True).map(circuit)
    trace = result.schedule.trace
    print(f"actual latency: {result.latency_seconds:.3f} s "
          f"({result.elapsed_seconds:.2f} s to map)\n")

    # 1. Where did the machine spend its time?
    print(utilization_heatmap(trace, params.fabric.width, params.fabric.height))
    print()
    print(congestion_heatmap(trace, params.fabric.width, params.fabric.height))
    print()

    # 2. Hot spots.
    print("busiest ULBs (ops executed):")
    for ulb, count in busiest_ulbs(trace, count=5):
        print(f"  {ulb}: {count}")
    travel = qubit_travel(trace)
    most_travelled = sorted(travel, key=travel.get, reverse=True)[:5]
    print("most-travelled qubits (channel hops):")
    for qubit in most_travelled:
        print(f"  {circuit.qubit_names[qubit]}: {travel[qubit]}")
    print()

    # 3. How routing latencies reshape the critical path.
    qodg = build_qodg(circuit)
    delays = params.delays.by_kind()

    def without_routing(gate):
        return delays[gate.kind]

    def with_routing(gate):
        extra = 800.0 if gate.is_two_qubit_ft else 200.0
        return delays[gate.kind] + extra

    shift = critical_set_shift(qodg, without_routing, with_routing)
    slack = analyze_slack(qodg, with_routing)
    print(
        f"critical operations without routing: "
        f"{len(shift['stable']) + len(shift['left'])}"
    )
    print(
        f"after adding routing latencies: {len(shift['joined'])} joined, "
        f"{len(shift['left'])} left, {len(shift['stable'])} stayed"
    )
    print(
        f"makespan with routing terms: {slack.makespan * 1e-6:.3f} s "
        "(the quantity LEQA estimates analytically)"
    )


if __name__ == "__main__":
    main()
