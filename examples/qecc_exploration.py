#!/usr/bin/env python3
"""QECC design-space exploration — the paper's motivating use case.

"This method allows designers of quantum error correction codes (QECC) to
investigate the effect of different error correction codes on the latency
of quantum programs."  QECC choice changes the FT operation delays (the
``d_g`` inputs of Eq. 1): stronger codes multiply every logical-gate
delay.  Because LEQA is analytical, sweeping candidate codes costs
milliseconds per point instead of a mapper run each.

The script models a family of concatenated-Steane-style codes: each extra
concatenation level multiplies all gate delays (and T_move) by a constant
factor, while the non-transversal T gate pays an extra penalty.  It then
reports, per code level, the estimated latency of two benchmarks — the
kind of table a QECC designer would iterate on.

The (code level x benchmark) grid runs through the execution engine's
``BatchRunner``: each benchmark's FT netlist and IIG are staged once in
the shared artifact cache and reused across every code level, and the
deterministic result ordering maps the flat result list straight back
onto the table.

Run:  python examples/qecc_exploration.py
"""

import dataclasses

from repro import DEFAULT_PARAMS
from repro.analysis import format_table
from repro.engine import BatchRunner, CircuitSpec, Job
from repro.fabric import GateDelays

#: (label, overall delay multiplier, extra multiplier for T/T-dagger).
CODE_LEVELS = [
    ("level-1 Steane [[7,1,3]]", 1.0, 1.0),
    ("level-2 Steane [[49,1,9]]", 12.0, 1.4),
    ("level-3 Steane [[343,1,27]]", 140.0, 1.9),
]


def delays_for(level_factor: float, t_penalty: float) -> GateDelays:
    """Gate delays under a concatenation level (Table 1 as level 1)."""
    base = GateDelays()
    return GateDelays(
        h=base.h * level_factor,
        t=base.t * level_factor * t_penalty,
        tdg=base.tdg * level_factor * t_penalty,
        x=base.x * level_factor,
        y=base.y * level_factor,
        z=base.z * level_factor,
        s=base.s * level_factor,
        sdg=base.sdg * level_factor,
        cnot=base.cnot * level_factor,
    )


def main() -> None:
    benchmarks = ["8bitadder", "ham15"]
    jobs = []
    for label, level_factor, t_penalty in CODE_LEVELS:
        params = dataclasses.replace(
            DEFAULT_PARAMS,
            delays=delays_for(level_factor, t_penalty),
            t_move=DEFAULT_PARAMS.t_move * level_factor,
        )
        for name in benchmarks:
            jobs.append(
                Job(CircuitSpec(name), backend="leqa", params=params,
                    tag=label)
            )
    runner = BatchRunner(workers=1)
    results = runner.run(jobs)
    failed = [p for p in results if not p.ok]
    if failed:
        for point in failed:
            print(f"{point.job.tag}: {point.error}")
        raise SystemExit(1)
    points = iter(results)
    rows = []
    for label, _, _ in CODE_LEVELS:
        row = [label]
        for _ in benchmarks:
            row.append(f"{next(points).result.latency_seconds:.3f}")
        rows.append(row)
    print(
        format_table(
            ["QECC", *(f"{name} (s)" for name in benchmarks)],
            rows,
            title="Estimated latency per error-correction code",
        )
    )
    stats = runner.cache.stats()
    print(
        f"\nengine cache: {stats.miss_count('ft')} FT syntheses and "
        f"{stats.miss_count('iig')} IIG builds served all "
        f"{len(jobs)} grid cells."
    )
    print(
        "Each sweep point costs milliseconds; with a detailed mapper the "
        "same table would take a full scheduling/placement/routing run per "
        "cell.  The latency budget feeds back into how much error "
        "correction the program needs (the interdependency the paper's "
        "introduction describes)."
    )


if __name__ == "__main__":
    main()
