#!/usr/bin/env python3
"""QECC design-space exploration — the paper's motivating use case.

"This method allows designers of quantum error correction codes (QECC) to
investigate the effect of different error correction codes on the latency
of quantum programs."  QECC choice changes the FT operation delays (the
``d_g`` inputs of Eq. 1): stronger codes multiply every logical-gate
delay.  Because LEQA is analytical, sweeping candidate codes costs
milliseconds per point instead of a mapper run each.

The script models a family of concatenated-Steane-style codes: each extra
concatenation level multiplies all gate delays (and T_move) by a constant
factor, while the non-transversal T gate pays an extra penalty.  It then
reports, per code level, the estimated latency of two benchmarks — the
kind of table a QECC designer would iterate on.

The (code level x benchmark) grid is the staged pipeline's best case: a
code change touches only the ``gate_delays`` and ``t_move`` parameter
aspects, which invalidate nothing upstream of the node-delay table.
Each benchmark therefore runs as **one batched
``StagedPipeline.sweep``**: the FT netlist, IIG, zones, Hamiltonian
paths and coverage series are built once per benchmark (the shared
artifact cache proves it), and every code level's critical path is
evaluated in a single batched pass.

Run:  python examples/qecc_exploration.py
"""

import dataclasses

from repro import DEFAULT_PARAMS
from repro.analysis import format_table
from repro.core.pipeline import StagedPipeline
from repro.engine import ArtifactCache, CircuitSpec
from repro.fabric import GateDelays

#: (label, overall delay multiplier, extra multiplier for T/T-dagger).
CODE_LEVELS = [
    ("level-1 Steane [[7,1,3]]", 1.0, 1.0),
    ("level-2 Steane [[49,1,9]]", 12.0, 1.4),
    ("level-3 Steane [[343,1,27]]", 140.0, 1.9),
]


def delays_for(level_factor: float, t_penalty: float) -> GateDelays:
    """Gate delays under a concatenation level (Table 1 as level 1)."""
    base = GateDelays()
    return GateDelays(
        h=base.h * level_factor,
        t=base.t * level_factor * t_penalty,
        tdg=base.tdg * level_factor * t_penalty,
        x=base.x * level_factor,
        y=base.y * level_factor,
        z=base.z * level_factor,
        s=base.s * level_factor,
        sdg=base.sdg * level_factor,
        cnot=base.cnot * level_factor,
    )


def main() -> None:
    benchmarks = ["8bitadder", "ham15"]
    grid = [
        dataclasses.replace(
            DEFAULT_PARAMS,
            delays=delays_for(level_factor, t_penalty),
            t_move=DEFAULT_PARAMS.t_move * level_factor,
        )
        for _, level_factor, t_penalty in CODE_LEVELS
    ]
    cache = ArtifactCache()
    pipeline = StagedPipeline(cache=cache)
    per_benchmark = {
        name: pipeline.sweep(cache.ft_circuit(CircuitSpec(name)), grid)
        for name in benchmarks
    }
    rows = []
    for index, (label, _, _) in enumerate(CODE_LEVELS):
        row = [label]
        for name in benchmarks:
            row.append(f"{per_benchmark[name][index].latency_seconds:.3f}")
        rows.append(row)
    print(
        format_table(
            ["QECC", *(f"{name} (s)" for name in benchmarks)],
            rows,
            title="Estimated latency per error-correction code",
        )
    )
    stats = cache.stats()
    cells = len(CODE_LEVELS) * len(benchmarks)
    print(
        f"\nengine cache: {stats.miss_count('ft')} FT syntheses, "
        f"{stats.miss_count('iig')} IIG builds, "
        f"{stats.miss_count('zones')} zone and "
        f"{stats.miss_count('coverage')} coverage-series builds served "
        f"all {cells} grid cells (delay-only sweep: nothing upstream of "
        "the node-delay table rebuilds)."
    )
    print(
        "Each sweep point costs milliseconds; with a detailed mapper the "
        "same table would take a full scheduling/placement/routing run per "
        "cell.  The latency budget feeds back into how much error "
        "correction the program needs (the interdependency the paper's "
        "introduction describes)."
    )


if __name__ == "__main__":
    main()
