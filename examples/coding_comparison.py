#!/usr/bin/env python3
"""Comparing software coding techniques — the algorithm-designer use case.

"This method would enable quantum algorithm designers ... to learn
efficient ways of coding their quantum algorithms by quickly comparing
the latency of different software coding techniques."

The script compares two codings of the same function — a multi-controlled
NOT with 8 controls — at the netlist level:

* **flat**: one 8-control MCT, expanded by the paper's ancilla-chain
  method (no ancilla sharing) during FT synthesis;
* **balanced**: a hand-written tree of Toffolis computing the conjunction
  in log depth before the final flip, then uncomputing.

Both are verified functionally identical on sampled inputs, then LEQA
scores their latency under the Table-1 fabric.  The balanced coding wins
on latency (shorter critical path) at the cost of extra ancilla qubits —
exactly the coding trade-off the paper wants designers to iterate on.

Run:  python examples/coding_comparison.py
"""

import random

from repro import Circuit, DEFAULT_PARAMS, LEQAEstimator, synthesize_ft
from repro.circuits import mct, toffoli
from repro.circuits.simulate import simulate_basis

NUM_CONTROLS = 8


def flat_coding() -> Circuit:
    """One big multi-controlled Toffoli; FT synthesis expands it."""
    circuit = Circuit(NUM_CONTROLS + 1, name="flat-mct")
    circuit.append(mct(tuple(range(NUM_CONTROLS)), NUM_CONTROLS))
    return circuit


def balanced_coding() -> Circuit:
    """Log-depth conjunction tree with explicit ancillas."""
    circuit = Circuit(NUM_CONTROLS + 1, name="balanced-tree")
    target = NUM_CONTROLS
    layer = list(range(NUM_CONTROLS))
    compute = []
    while len(layer) > 2:
        next_layer = []
        for i in range(0, len(layer) - 1, 2):
            anc = circuit.add_qubit()
            compute.append(toffoli(layer[i], layer[i + 1], anc))
            next_layer.append(anc)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
    circuit.extend(compute)
    circuit.append(toffoli(layer[0], layer[1], target))
    circuit.extend(reversed(compute))
    return circuit


def check_equivalent(flat: Circuit, tree: Circuit, samples: int = 200) -> None:
    """Both codings must agree on the control/target qubits."""
    rng = random.Random(42)
    width = NUM_CONTROLS + 1
    for _ in range(samples):
        bits = [rng.randrange(2) for _ in range(width)]
        out_flat = simulate_basis(flat, bits + [0] * (flat.num_qubits - width))
        out_tree = simulate_basis(tree, bits + [0] * (tree.num_qubits - width))
        assert out_flat[:width] == out_tree[:width], "codings disagree!"


def main() -> None:
    estimator = LEQAEstimator(params=DEFAULT_PARAMS)
    codings = {"flat MCT chain": flat_coding(), "balanced tree": balanced_coding()}

    # The flat coding gains its ancillas inside synthesize_ft; lower both
    # to the FT gate set first, then verify equivalence on the Toffoli
    # level (classical simulation).
    from repro.circuits import eliminate_fredkin, eliminate_swap, expand_multi_controlled

    flat_toffoli = eliminate_fredkin(
        eliminate_swap(expand_multi_controlled(codings["flat MCT chain"]))
    )
    check_equivalent(flat_toffoli, codings["balanced tree"])
    print("functional check: both codings compute the same function\n")

    for label, circuit in codings.items():
        ft = synthesize_ft(circuit)
        estimate = estimator.estimate(ft)
        critical = len(estimate.critical.node_ids)
        print(
            f"{label:16s}: {ft.num_qubits:3d} qubits, {len(ft):4d} FT ops, "
            f"critical path {critical:4d} ops, "
            f"estimated latency {estimate.latency_seconds * 1e3:8.2f} ms"
        )
    print(
        "\nSame function, different codings, measurably different latency - "
        "scored in milliseconds per variant."
    )


if __name__ == "__main__":
    main()
