#!/usr/bin/env python3
"""Service round trip: a daemon, coalescing clients and a warm store.

Starts an in-process estimation daemon (`leqa serve` minus the shell),
points it at a persistent artifact store, then plays three clients
against it:

1. eight *identical* requests submitted concurrently — the queue
   coalesces them onto one job, so the backend runs once;
2. a higher-priority request that jumps the queue;
3. a second daemon "restart" over the same store, showing the warm
   start: the repeated request is served from disk artifacts.

Run:  python examples/service_roundtrip.py
"""

import tempfile
import threading
from pathlib import Path

from repro.service import EstimationServer, ServiceClient


def run_daemon(socket_path: Path, store_dir: Path) -> tuple:
    """Start a daemon thread; returns (server, thread, ready client)."""
    from repro.store import ArtifactStore

    server = EstimationServer(
        socket_path, workers=2, store=ArtifactStore(store_dir)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(socket_path, timeout=120)
    client.ping()
    return server, thread, client


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="leqa-service-"))
    store_dir = workdir / "store"
    spec = {"source": "gf2^16mult", "params": {"width": 60, "height": 60}}

    # --- first daemon lifetime: cold store --------------------------------
    server, thread, client = run_daemon(workdir / "leqa-a.sock", store_dir)

    # 1. Eight identical submissions race in; the queue coalesces them.
    job_ids: list[str] = []
    submitters = [
        threading.Thread(target=lambda: job_ids.append(client.submit(spec)))
        for _ in range(8)
    ]
    for submitter in submitters:
        submitter.start()
    for submitter in submitters:
        submitter.join()
    print(f"8 identical submits -> job ids {sorted(set(job_ids))}")

    # 2. A priority request (different fabric) jumps ahead of FIFO order.
    urgent = client.submit(
        {"source": "gf2^16mult", "params": {"width": 40, "height": 40}},
        priority=10,
    )
    first = client.result(job_ids[0], timeout=300)
    rushed = client.result(urgent, timeout=300)
    print(
        f"coalesced job: {first['submits']} submits, one computation, "
        f"latency {first['result']['latency_seconds']:.4f} s "
        f"({first['result']['elapsed_seconds'] * 1000:.1f} ms of backend)"
    )
    print(
        f"priority job:  latency {rushed['result']['latency_seconds']:.4f} s"
    )
    stats = client.stats()
    print(
        f"daemon stats:  {stats['jobs']['done']} done, "
        f"{stats['coalesced']} coalesced, "
        f"store writes {stats['store']['writes']}"
    )
    client.shutdown()
    thread.join(timeout=10)

    # --- second daemon lifetime: warm store -------------------------------
    server, thread, client = run_daemon(workdir / "leqa-b.sock", store_dir)
    job = client.submit(spec)
    warm = client.result(job, timeout=300)
    stats = client.stats()
    print(
        f"\nrestarted daemon, same store: latency "
        f"{warm['result']['latency_seconds']:.4f} s in "
        f"{warm['result']['elapsed_seconds'] * 1000:.1f} ms of backend "
        f"(store hits {stats['store']['hits']})"
    )
    same = warm["result"]["latency"] == first["result"]["latency"]
    print(f"warm result bitwise-identical to cold: {same}")
    client.shutdown()
    thread.join(timeout=10)


if __name__ == "__main__":
    main()
